package core

import (
	"fmt"

	"github.com/peace-mesh/peace/internal/sgs"
)

// This file implements Section IV.D: the network operator's audit — which
// attributes a logged authentication transcript to a user *group* and
// nothing more — and the law-authority trace, which combines the audit
// with the group manager's records (and the non-repudiation receipt chain)
// to identify the responsible user.

// Audit runs the operator's audit protocol over a logged access request
// (M.2): re-derive (û, v̂) from the transcript, scan grt for the token
// encoded in (T1, T2), and map it to the owning user group. Only the
// group — nonessential attribute information — is revealed.
func (n *NetworkOperator) Audit(m *AccessRequest) (AuditResult, error) {
	return n.auditTranscript(m.SignedTranscript(), m.Sig)
}

// AuditSession runs the complete audit protocol of Section IV.D against a
// router's log: fetch the M.2 for the disputed session identifier from
// the router (Step 1), then scan grt (Steps 2–3).
func (n *NetworkOperator) AuditSession(r *MeshRouter, id SessionID) (AuditResult, error) {
	m, ok := r.LoggedAccessRequest(id)
	if !ok {
		return AuditResult{}, fmt.Errorf("audit: session %s: %w", id, ErrNoSession)
	}
	return n.Audit(m)
}

// AuditPeerHello audits a logged user–user M̃.1 the same way.
func (n *NetworkOperator) AuditPeerHello(m *PeerHello) (AuditResult, error) {
	return n.auditTranscript(m.SignedTranscript(), m.Sig)
}

// AuditPeerResponse audits a logged user–user M̃.2.
func (n *NetworkOperator) AuditPeerResponse(m *PeerResponse) (AuditResult, error) {
	return n.auditTranscript(m.SignedTranscript(), m.Sig)
}

func (n *NetworkOperator) auditTranscript(transcript []byte, sig *sgs.Signature) (AuditResult, error) {
	// The signature must verify before an audit is meaningful; a forged
	// transcript must not implicate anyone.
	if err := sgs.Verify(n.issuer.PublicKey(), transcript, sig); err != nil {
		return AuditResult{}, fmt.Errorf("audit: %w", err)
	}

	n.mu.Lock()
	entries := append([]grtEntry(nil), n.grt...)
	n.mu.Unlock()

	tokens := make([]*sgs.RevocationToken, len(entries))
	for i := range entries {
		tokens[i] = entries[i].token
	}
	idx := sgs.Open(n.issuer.PublicKey(), transcript, sig, tokens)
	if idx < 0 {
		return AuditResult{TokensScanned: len(tokens)}, ErrAuditFailed
	}
	return AuditResult{
		Group:         entries[idx].group,
		KeyIndex:      entries[idx].index,
		TokensScanned: idx + 1,
	}, nil
}

// LawAuthority models the entity of the privacy model that may, with the
// cooperation of both the operator and the relevant group manager, link a
// communication session to a specific user.
type LawAuthority struct {
	// Managers registers the reachable group managers by group id.
	Managers map[GroupID]*GroupManager
}

// NewLawAuthority creates a law authority knowing the given managers.
func NewLawAuthority(gms ...*GroupManager) *LawAuthority {
	la := &LawAuthority{Managers: make(map[GroupID]*GroupManager, len(gms))}
	for _, gm := range gms {
		la.Managers[gm.ID()] = gm
	}
	return la
}

// Trace executes the full tracing procedure for a logged access request:
// the operator's audit yields (A_{i,j}, grp_i) → group i and slot j; the
// group manager resolves slot j to uid_j; and the receipt chain (the GM's
// receipt for the key bundle, the user's receipt for the assignment) is
// verified for non-repudiation.
func (la *LawAuthority) Trace(n *NetworkOperator, m *AccessRequest) (TraceResult, error) {
	audit, err := n.Audit(m)
	if err != nil {
		return TraceResult{}, err
	}
	return la.completeTrace(n, audit)
}

// TracePeerHello traces a logged user–user M̃.1.
func (la *LawAuthority) TracePeerHello(n *NetworkOperator, m *PeerHello) (TraceResult, error) {
	audit, err := n.AuditPeerHello(m)
	if err != nil {
		return TraceResult{}, err
	}
	return la.completeTrace(n, audit)
}

func (la *LawAuthority) completeTrace(n *NetworkOperator, audit AuditResult) (TraceResult, error) {
	gm, ok := la.Managers[audit.Group]
	if !ok {
		return TraceResult{Audit: audit}, fmt.Errorf("trace: %w: %q", ErrUnknownGroup, audit.Group)
	}
	uid, userReceipt, assignmentBody, err := gm.LookupUser(audit.KeyIndex)
	if err != nil {
		return TraceResult{Audit: audit}, fmt.Errorf("trace: %w", err)
	}

	res := TraceResult{Audit: audit, User: uid}

	// Non-repudiation: the GM receipted the NO's bundle, and the user
	// receipted the GM's assignment. Either signature failing leaves the
	// trace result standing but unproven (ReceiptVerified = false).
	gmReceipt, gmPayload := gm.BundleReceipt()
	n.mu.Lock()
	rec, haveRec := n.gmReceipts[audit.Group]
	n.mu.Unlock()
	if !haveRec || gmReceipt == nil || userReceipt == nil {
		return res, nil
	}
	if err := gmReceipt.Verify(gm.Public(), gmPayload); err != nil {
		return res, nil
	}
	// Cross-check: the receipt the NO holds must match the GM's.
	if err := rec.receipt.Verify(rec.pub, rec.payload); err != nil {
		return res, nil
	}
	userKey, ok := gm.UserReceiptKey(res.User)
	if !ok || userReceipt.Verify(userKey, assignmentBody) != nil {
		return res, nil
	}
	res.ReceiptVerified = true
	return res, nil
}
