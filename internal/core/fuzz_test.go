package core

import (
	"bytes"
	"testing"
)

// fuzzSeeds builds one valid marshaled copy of each AKA message so the
// fuzzers start from structurally interesting corpora instead of noise.
func fuzzSeeds(f *testing.F) (beacon, accessReq, peerHello []byte) {
	f.Helper()
	tb := newTestbed(f, 1, 2, 1)
	r := tb.routers["MR-0"]
	u, peer := tb.user("0", 0), tb.user("0", 1)

	b, err := r.Beacon()
	if err != nil {
		f.Fatal(err)
	}
	m2, err := u.HandleBeacon(b, "grp-0")
	if err != nil {
		f.Fatal(err)
	}
	if err := peer.ObserveBeacon(b); err != nil {
		f.Fatal(err)
	}
	hello, err := u.StartPeerAuth("grp-0")
	if err != nil {
		f.Fatal(err)
	}
	return b.Marshal(), m2.Marshal(), hello.Marshal()
}

func FuzzUnmarshalBeacon(f *testing.F) {
	seed, _, _ := fuzzSeeds(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := UnmarshalBeacon(data)
		if err != nil {
			return
		}
		// A successfully parsed beacon must re-marshal without panicking
		// and survive a second parse (canonical form is stable).
		out := b.Marshal()
		if _, err := UnmarshalBeacon(out); err != nil {
			t.Fatalf("re-parse of re-marshaled beacon: %v", err)
		}
	})
}

func FuzzUnmarshalAccessRequest(f *testing.F) {
	_, seed, _ := fuzzSeeds(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalAccessRequest(data)
		if err != nil {
			return
		}
		out := m.Marshal()
		m2, err := UnmarshalAccessRequest(out)
		if err != nil {
			t.Fatalf("re-parse of re-marshaled access request: %v", err)
		}
		if !bytes.Equal(out, m2.Marshal()) {
			t.Fatal("access request marshal not stable")
		}
	})
}

// FuzzPeekAccessRequest hardens the pre-decode M.2 peek the ingress
// puzzle gate runs on every handshake datagram before any curve or
// signature work: it must never panic, must accept exactly what the full
// decoder accepts structurally, and must agree with it on the
// puzzle-solution echo.
func FuzzPeekAccessRequest(f *testing.F) {
	_, seed, _ := fuzzSeeds(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, perr := PeekAccessRequest(data)
		m, merr := UnmarshalAccessRequest(data)
		if merr != nil {
			return
		}
		// Everything the full decoder accepts, the peek must accept too (the
		// converse does not hold: the peek skips curve and signature checks).
		if perr != nil {
			t.Fatalf("peek rejected a fully decodable M.2: %v", perr)
		}
		if p.HasSolution != m.HasSolution || p.Solution != m.Solution ||
			!p.PuzzleIssuedAt.Equal(m.PuzzleIssuedAt) || p.PuzzleDifficulty != m.PuzzleDifficulty {
			t.Fatal("peek and full decode disagree on the solution echo")
		}
		if !bytes.Equal(p.RawGJ, m.GJ.Marshal()) || !bytes.Equal(p.RawGR, m.GR.Marshal()) {
			t.Fatal("peek raw shares disagree with decoded points")
		}
		if SessionIDFromRaw(p.RawGR, p.RawGJ) != NewSessionID(m.GR, m.GJ) {
			t.Fatal("raw session id disagrees with decoded session id")
		}
	})
}

// FuzzUnmarshalDataFrame hardens the session data-frame decoder, which the
// transport keepalive path runs on every KindSessionPing/Pong payload —
// attacker-reachable bytes on any endpoint socket.
func FuzzUnmarshalDataFrame(f *testing.F) {
	sess := &Session{ID: SessionID{1, 2, 3}}
	frame := sess.AuthData([]byte("seed payload"))
	f.Add(frame.Marshal())
	f.Add(frame.Marshal()[:16])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		df, err := UnmarshalDataFrame(data)
		if err != nil {
			return
		}
		out := df.Marshal()
		df2, err := UnmarshalDataFrame(out)
		if err != nil {
			t.Fatalf("re-parse of re-marshaled data frame: %v", err)
		}
		if !bytes.Equal(out, df2.Marshal()) {
			t.Fatal("data frame marshal not stable")
		}
	})
}

func FuzzUnmarshalPeerHello(f *testing.F) {
	_, _, seed := fuzzSeeds(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := UnmarshalPeerHello(data)
		if err != nil {
			return
		}
		out := m.Marshal()
		if _, err := UnmarshalPeerHello(out); err != nil {
			t.Fatalf("re-parse of re-marshaled peer hello: %v", err)
		}
	})
}
