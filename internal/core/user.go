package core

import (
	"fmt"
	"math/big"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/puzzle"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// Credential is one assembled group private key gsk[i,j] together with the
// slot it was issued for.
type Credential struct {
	Group GroupID
	Index int
	Key   *sgs.PrivateKey
}

// User is a network user: it enrolls with one or more user groups,
// authenticates to mesh routers (Section IV.B) and to peer users (Section
// IV.C), and maintains its established sessions.
type User struct {
	cfg      Config
	identity Identity
	signKey  *cert.KeyPair // receipt/non-repudiation key
	noPub    cert.PublicKey
	gpk      *sgs.PublicKey

	mu sync.Mutex
	// creds holds one credential per enrolled group.
	creds map[GroupID]*Credential
	// pendingAssignments holds (grp, x) halves awaiting the TTP half.
	pendingAssignments map[GroupID]*KeyAssignment
	// sessions are the user's established security associations.
	sessions map[SessionID]*Session
	// pendingRouter tracks in-flight user–router AKAs keyed by session id.
	pendingRouter map[SessionID]*pendingRouterAuth
	// pendingPeer tracks in-flight user–user AKAs (initiator side).
	pendingPeer map[string]*pendingPeerAuth // keyed by marshaled g^{r_j}
	// lastG caches the serving router's generator g for peer protocols.
	lastG *bn256.G1
	// urlTokens caches the parsed revocation tokens of the installed URL
	// snapshot epoch, used to screen peers in user–user authentication.
	urlTokens      []*sgs.RevocationToken
	urlTokensEpoch uint64

	// urlStore / crlStore hold the epoch-numbered revocation snapshots the
	// user converges onto via deltas fetched when a beacon advertises a
	// newer (epoch, digest). Own locks; never hold u.mu across them.
	urlStore *revocation.Store
	crlStore *revocation.Store

	// puzzleSolver, when set, replaces the unbounded in-line brute force
	// used to answer beacon puzzles — transports install a budgeted,
	// randomized-start solver so solving stays off the hot path and honest
	// fleets answering one broadcast puzzle find distinct solutions.
	puzzleSolver func(*puzzle.Puzzle) (uint64, bool)
}

type pendingRouterAuth struct {
	routerID string
	gj, gr   *bn256.G1
	dh       []byte // marshaled K_{k,j}
}

type pendingPeerAuth struct {
	gj *bn256.G1
	rj *big.Int
	g  *bn256.G1
	ts int64
}

// NewUser creates a user with the given identity.
func NewUser(cfg Config, identity Identity, noPub cert.PublicKey, gpk *sgs.PublicKey) (*User, error) {
	cfg = cfg.withDefaults()
	kp, err := cert.GenerateKeyPair(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("user %q: %w", identity.Essential, err)
	}
	urlStore, err := revocation.NewStore(revocation.ListURL, noPub)
	if err != nil {
		return nil, fmt.Errorf("user %q: %w", identity.Essential, err)
	}
	crlStore, err := revocation.NewStore(revocation.ListCRL, noPub)
	if err != nil {
		return nil, fmt.Errorf("user %q: %w", identity.Essential, err)
	}
	return &User{
		cfg:                cfg,
		identity:           identity,
		signKey:            kp,
		noPub:              noPub,
		gpk:                gpk,
		creds:              make(map[GroupID]*Credential),
		pendingAssignments: make(map[GroupID]*KeyAssignment),
		sessions:           make(map[SessionID]*Session),
		pendingRouter:      make(map[SessionID]*pendingRouterAuth),
		pendingPeer:        make(map[string]*pendingPeerAuth),
		urlStore:           urlStore,
		crlStore:           crlStore,
	}, nil
}

// ID returns the user's essential attribute information uid_j. It is
// local state only — no protocol message ever carries it.
func (u *User) ID() UserID { return u.identity.Essential }

// Identity returns a copy of the user's identity information.
func (u *User) Identity() Identity {
	out := Identity{Essential: u.identity.Essential}
	out.Attributes = append(out.Attributes, u.identity.Attributes...)
	return out
}

// Groups lists the groups the user holds credentials for.
func (u *User) Groups() []GroupID {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]GroupID, 0, len(u.creds))
	for g := range u.creds {
		out = append(out, g)
	}
	return out
}

// AcceptCredential completes enrollment: combine the GM's assignment with
// the TTP's masked token, validate the assembled key against gpk, and
// produce the two signed receipts (to GM and TTP).
func (u *User) AcceptCredential(assign *KeyAssignment, maskedToken []byte) (gmReceipt, ttpReceipt *Receipt, err error) {
	a, err := unmaskToken(maskedToken, assign.X)
	if err != nil {
		return nil, nil, fmt.Errorf("user %q: %w", u.ID(), err)
	}
	key := &sgs.PrivateKey{A: a, Grp: assign.Grp, X: assign.X}
	if err := sgs.CheckKey(u.gpk, key); err != nil {
		return nil, nil, fmt.Errorf("user %q: assembled key invalid: %w", u.ID(), err)
	}

	gmReceipt, err = signReceipt(u.cfg.Rand, u.signKey, "user:"+string(u.ID()), assign.body())
	if err != nil {
		return nil, nil, err
	}
	ttpReceipt, err = signReceipt(u.cfg.Rand, u.signKey, "user:"+string(u.ID()), maskedToken)
	if err != nil {
		return nil, nil, err
	}

	u.mu.Lock()
	defer u.mu.Unlock()
	u.creds[assign.Group] = &Credential{Group: assign.Group, Index: assign.Index, Key: key}
	return gmReceipt, ttpReceipt, nil
}

// ReceiptKey returns the user's receipt-verification public key.
func (u *User) ReceiptKey() cert.PublicKey { return u.signKey.Public() }

// Credentials returns copies of the user's enrolled credentials, for
// out-of-band provisioning (e.g. handing a pre-enrolled identity to a
// device that authenticates over the network transport).
func (u *User) Credentials() []*Credential {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]*Credential, 0, len(u.creds))
	for _, c := range u.creds {
		cp := *c
		out = append(out, &cp)
	}
	return out
}

// InstallCredential installs an externally provisioned credential after
// validating the assembled key against the group public key — the inverse
// of Credentials for deployments where enrollment ran elsewhere (a
// provisioning service) and only the finished gsk reaches the device.
func (u *User) InstallCredential(c *Credential) error {
	if c == nil || c.Key == nil {
		return fmt.Errorf("user %q: nil credential", u.ID())
	}
	if err := sgs.CheckKey(u.gpk, c.Key); err != nil {
		return fmt.Errorf("user %q: provisioned key invalid: %w", u.ID(), err)
	}
	cp := *c
	u.mu.Lock()
	defer u.mu.Unlock()
	u.creds[c.Group] = &cp
	return nil
}

// credential picks the credential for group, or any credential when group
// is empty (users act in different roles; callers choose the role).
func (u *User) credential(group GroupID) (*Credential, error) {
	u.mu.Lock()
	defer u.mu.Unlock()
	if group != "" {
		c, ok := u.creds[group]
		if !ok {
			return nil, fmt.Errorf("user %q: no credential for group %q: %w", u.ID(), group, ErrUnknownGroup)
		}
		return c, nil
	}
	for _, c := range u.creds {
		return c, nil
	}
	return nil, fmt.Errorf("user %q: no credentials: %w", u.ID(), ErrUnknownGroup)
}

// sessionTranscript is the key-derivation binding for a session: the pair
// of DH shares in a fixed order.
func sessionTranscript(gr, gj *bn256.G1) []byte {
	w := wire.NewWriter(160)
	w.StringField("peace/transcript:v1")
	w.BytesField(gr.Marshal())
	w.BytesField(gj.Marshal())
	return w.Bytes()
}

// HandleBeacon runs user Step 2 of the user–router AKA: validate M.1
// (Step 2.1: timestamp, revocation refs, certificate + CRL, router
// signature), then build M.2 (Step 2.2): fresh r_j, group signature under
// the credential for the chosen group (empty = any), puzzle solution when
// demanded, and the precomputed session key K_{k,j} = (g^{r_R})^{r_j}.
//
// The user's installed revocation state must cover what the beacon
// advertises; otherwise HandleBeacon fails with ErrRevocationStale and
// the caller fetches the gaps reported by RevocationGaps (a delta or a
// full snapshot, served by the router's transport) before retrying.
func (u *User) HandleBeacon(b *Beacon, group GroupID) (*AccessRequest, error) {
	now := u.cfg.Clock.Now()

	// Step 2.1: freshness and router legitimacy.
	if !fresh(u.cfg, now, b.Timestamp) {
		return nil, fmt.Errorf("%w: beacon ts1", ErrReplay)
	}
	if err := u.checkBeaconRevocations(b, now); err != nil {
		return nil, err
	}
	if err := cert.CheckCertificate(b.Cert, u.routerRevoked, u.noPub, now); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadBeacon, err)
	}
	if b.Cert.SubjectID != b.RouterID {
		return nil, fmt.Errorf("%w: certificate subject %q != router %q", ErrBadBeacon, b.Cert.SubjectID, b.RouterID)
	}
	if err := b.Cert.PublicKey.Verify(b.signedBody(), b.Signature); err != nil {
		return nil, fmt.Errorf("%w: router signature: %v", ErrBadBeacon, err)
	}

	cred, err := u.credential(group)
	if err != nil {
		return nil, err
	}

	// Step 2.2: DH response and group signature.
	rj, err := bn256.RandomScalar(u.cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("user %q: %w", u.ID(), err)
	}
	gj := new(bn256.G1).ScalarMult(b.G, rj)

	m := &AccessRequest{GJ: gj, GR: b.GR, Timestamp: now}
	if b.Puzzle != nil {
		sol, ok := u.solvePuzzle(b.Puzzle)
		if !ok {
			return nil, fmt.Errorf("user %q: %w: solve budget exhausted at difficulty %d",
				u.ID(), ErrPuzzleRequired, b.Puzzle.Difficulty)
		}
		m.HasSolution = true
		m.Solution = sol
		m.PuzzleIssuedAt = b.Puzzle.IssuedAt
		m.PuzzleDifficulty = b.Puzzle.Difficulty
	}
	sig, err := sgs.Sign(u.cfg.Rand, u.gpk, cred.Key, m.SignedTranscript())
	if err != nil {
		return nil, fmt.Errorf("user %q: sign M.2: %w", u.ID(), err)
	}
	m.Sig = sig

	// Step 2.2.5: K_{k,j} = (g^{r_R})^{r_j}.
	dh := new(bn256.G1).ScalarMult(b.GR, rj)

	id := NewSessionID(b.GR, gj)
	u.mu.Lock()
	u.pendingRouter[id] = &pendingRouterAuth{
		routerID: b.RouterID,
		gj:       gj,
		gr:       b.GR,
		dh:       dh.Marshal(),
	}
	u.lastG = b.G
	u.mu.Unlock()
	return m, nil
}

// SetPuzzleSolver installs the strategy HandleBeacon (and transports doing
// RejectPuzzle recovery) use to answer puzzle challenges. The solver
// returns the solution and whether it found one within its budget; a nil
// solver restores the default unbounded brute force.
func (u *User) SetPuzzleSolver(fn func(*puzzle.Puzzle) (uint64, bool)) {
	u.mu.Lock()
	u.puzzleSolver = fn
	u.mu.Unlock()
}

// solvePuzzle answers one puzzle challenge via the installed solver.
func (u *User) solvePuzzle(p *puzzle.Puzzle) (uint64, bool) {
	u.mu.Lock()
	fn := u.puzzleSolver
	u.mu.Unlock()
	if fn != nil {
		return fn(p)
	}
	return p.Solve(), true
}

// ObserveBeacon validates a beacon and refreshes the cached generator
// without initiating authentication — what an already-attached user does
// with the router's periodic broadcasts. Like HandleBeacon it fails with
// ErrRevocationStale when the advertised revocation refs have moved past
// the installed state.
func (u *User) ObserveBeacon(b *Beacon) error {
	now := u.cfg.Clock.Now()
	if !fresh(u.cfg, now, b.Timestamp) {
		return fmt.Errorf("%w: beacon ts1", ErrReplay)
	}
	if err := u.checkBeaconRevocations(b, now); err != nil {
		return err
	}
	if err := cert.CheckCertificate(b.Cert, u.routerRevoked, u.noPub, now); err != nil {
		return fmt.Errorf("%w: %v", ErrBadBeacon, err)
	}
	if err := b.Cert.PublicKey.Verify(b.signedBody(), b.Signature); err != nil {
		return fmt.Errorf("%w: router signature: %v", ErrBadBeacon, err)
	}
	u.mu.Lock()
	u.lastG = b.G
	u.mu.Unlock()
	return nil
}

// checkBeaconRevocations verifies that the installed URL/CRL state covers
// what the beacon advertises. A missing, older or expired snapshot yields
// ErrRevocationStale (fetch the gaps and retry); an advertisement at the
// installed epoch but with a different digest is an equivocating or
// corrupt beacon and yields ErrBadBeacon.
func (u *User) checkBeaconRevocations(b *Beacon, now time.Time) error {
	for _, st := range []struct {
		store *revocation.Store
		ref   revocation.Ref
		name  string
	}{
		{u.urlStore, b.URLRef, "url"},
		{u.crlStore, b.CRLRef, "crl"},
	} {
		snap, ok := st.store.Current()
		if !ok {
			return fmt.Errorf("%w: no %s installed", ErrRevocationStale, st.name)
		}
		if snap.Epoch == st.ref.Epoch {
			if snap.Digest() != st.ref.Digest {
				return fmt.Errorf("%w: %s digest mismatch at epoch %d", ErrBadBeacon, st.name, st.ref.Epoch)
			}
		} else if snap.Epoch < st.ref.Epoch {
			return fmt.Errorf("%w: %s at epoch %d, beacon advertises %d", ErrRevocationStale, st.name, snap.Epoch, st.ref.Epoch)
		}
		// A beacon advertising an OLDER epoch than we hold is tolerated:
		// our state is a superset and monotonicity forbids downgrading.
		if now.After(snap.NextUpdate) {
			return fmt.Errorf("%w: %s expired at %v", ErrRevocationStale, st.name, snap.NextUpdate)
		}
	}
	return nil
}

// routerRevoked is the CRL predicate handed to cert.CheckCertificate.
func (u *User) routerRevoked(subjectID string) bool {
	return u.crlStore.Contains([]byte(subjectID))
}

// RevocationGaps reports, for each list the beacon advertises ahead of
// (or absent from) the installed state, what the user holds — the input
// to a delta fetch (Have=true) or a full snapshot fetch (Have=false).
func (u *User) RevocationGaps(b *Beacon) []revocation.Gap {
	now := u.cfg.Clock.Now()
	var gaps []revocation.Gap
	if g, ok := u.urlStore.GapAgainst(b.URLRef, now); ok {
		gaps = append(gaps, g)
	}
	if g, ok := u.crlStore.GapAgainst(b.CRLRef, now); ok {
		gaps = append(gaps, g)
	}
	return gaps
}

// InstallRevocationSnapshot installs a full operator-signed snapshot for
// either list, subject to signature, staleness and anti-rollback checks.
func (u *User) InstallRevocationSnapshot(s *revocation.Snapshot) error {
	if err := u.revocationStore(s.List).Install(s, u.cfg.Clock.Now()); err != nil {
		return fmt.Errorf("user %q: %w", u.ID(), err)
	}
	return nil
}

// ApplyRevocationDelta advances either list by one operator-signed delta.
// Gap or digest errors mean the delta chain does not reach the installed
// state; fall back to InstallRevocationSnapshot.
func (u *User) ApplyRevocationDelta(d *revocation.Delta) error {
	if err := u.revocationStore(d.List).ApplyDelta(d, u.cfg.Clock.Now()); err != nil {
		return fmt.Errorf("user %q: %w", u.ID(), err)
	}
	return nil
}

// RevocationEpoch returns the installed epoch of one list (0 when nothing
// is installed yet).
func (u *User) RevocationEpoch(l revocation.List) uint64 {
	return u.revocationStore(l).Epoch()
}

func (u *User) revocationStore(l revocation.List) *revocation.Store {
	if l == revocation.ListCRL {
		return u.crlStore
	}
	return u.urlStore
}

// revocationTokens returns the parsed tokens of the installed URL
// snapshot, re-parsing only when the epoch moved.
func (u *User) revocationTokens() []*sgs.RevocationToken {
	snap, ok := u.urlStore.Current()
	if !ok {
		return nil
	}
	u.mu.Lock()
	if u.urlTokensEpoch == snap.Epoch && u.urlTokens != nil {
		toks := u.urlTokens
		u.mu.Unlock()
		return toks
	}
	u.mu.Unlock()
	toks, err := parseURLTokens(snap)
	if err != nil {
		// Entries were validated at install time; an unparsable token here
		// means corrupted memory, not wire input. Fail closed to an empty
		// screen list rather than panicking in a handler.
		return nil
	}
	u.mu.Lock()
	u.urlTokens, u.urlTokensEpoch = toks, snap.Epoch
	u.mu.Unlock()
	return toks
}

// HandleAccessConfirm completes the user–router AKA on receipt of M.3:
// decrypt the confirmation, check the echoed identifiers, and promote the
// pending state to an established session.
func (u *User) HandleAccessConfirm(m *AccessConfirm) (*Session, error) {
	id := NewSessionID(m.GR, m.GJ)
	u.mu.Lock()
	pend, ok := u.pendingRouter[id]
	u.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no pending AKA for %s", ErrNoSession, id)
	}

	sess := newSession(id, pend.routerID, pend.dh, sessionTranscript(pend.gr, pend.gj), u.cfg.Clock.Now())
	pt, err := symcrypto.Open(sess.keys.Enc, m.Ciphertext, id[:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfirmation, err)
	}
	r := wire.NewReader(pt)
	routerID, err := r.StringField()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfirmation, err)
	}
	gjRaw, err := r.BytesField()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfirmation, err)
	}
	grRaw, err := r.BytesField()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfirmation, err)
	}
	if routerID != pend.routerID ||
		string(gjRaw) != string(pend.gj.Marshal()) ||
		string(grRaw) != string(pend.gr.Marshal()) {
		return nil, fmt.Errorf("%w: transcript mismatch", ErrBadConfirmation)
	}

	u.mu.Lock()
	delete(u.pendingRouter, id)
	u.sessions[id] = sess
	u.mu.Unlock()
	return sess, nil
}

// SessionByID returns an established session.
func (u *User) SessionByID(id SessionID) (*Session, bool) {
	u.mu.Lock()
	defer u.mu.Unlock()
	s, ok := u.sessions[id]
	return s, ok
}

// Sessions returns the number of established sessions.
func (u *User) Sessions() int {
	u.mu.Lock()
	defer u.mu.Unlock()
	return len(u.sessions)
}

// StartPeerAuth initiates user–user authentication (M̃.1): sign
// (g, g^{r_j}, ts_1) with the chosen group credential and locally
// broadcast it. The generator g comes from the serving router's beacon.
func (u *User) StartPeerAuth(group GroupID) (*PeerHello, error) {
	u.mu.Lock()
	g := u.lastG
	u.mu.Unlock()
	if g == nil {
		return nil, fmt.Errorf("user %q: no beacon generator cached; process a beacon first", u.ID())
	}
	return u.StartPeerAuthWithGenerator(g, group)
}

// StartPeerAuthWithGenerator is StartPeerAuth with an explicit generator.
func (u *User) StartPeerAuthWithGenerator(g *bn256.G1, group GroupID) (*PeerHello, error) {
	cred, err := u.credential(group)
	if err != nil {
		return nil, err
	}
	rj, err := bn256.RandomScalar(u.cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("user %q: %w", u.ID(), err)
	}
	gj := new(bn256.G1).ScalarMult(g, rj)
	now := u.cfg.Clock.Now()

	m := &PeerHello{G: g, GJ: gj, Timestamp: now}
	sig, err := sgs.Sign(u.cfg.Rand, u.gpk, cred.Key, m.SignedTranscript())
	if err != nil {
		return nil, fmt.Errorf("user %q: sign M̃.1: %w", u.ID(), err)
	}
	m.Sig = sig

	u.mu.Lock()
	u.pendingPeer[string(gj.Marshal())] = &pendingPeerAuth{
		gj: gj,
		rj: rj,
		g:  g,
		ts: now.UnixNano(),
	}
	u.mu.Unlock()
	return m, nil
}

// HandlePeerHello runs the responder side of M̃.1 → M̃.2: verify the
// initiator's group signature and revocation status, pick r_l, compute
// the pairwise key, and reply with a group-signed M̃.2.
func (u *User) HandlePeerHello(m *PeerHello, group GroupID) (*PeerResponse, *Session, error) {
	now := u.cfg.Clock.Now()
	if !fresh(u.cfg, now, m.Timestamp) {
		return nil, nil, fmt.Errorf("%w: M̃.1 ts1", ErrReplay)
	}
	transcript := m.SignedTranscript()
	if err := sgs.Verify(u.gpk, transcript, m.Sig); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadAccessRequest, err)
	}
	if tokens := u.revocationTokens(); len(tokens) > 0 {
		if revoked, _ := sgs.IsRevoked(u.gpk, transcript, m.Sig, tokens); revoked {
			return nil, nil, ErrRevokedUser
		}
	}

	cred, err := u.credential(group)
	if err != nil {
		return nil, nil, err
	}
	rl, err := bn256.RandomScalar(u.cfg.Rand)
	if err != nil {
		return nil, nil, fmt.Errorf("user %q: %w", u.ID(), err)
	}
	gl := new(bn256.G1).ScalarMult(m.G, rl)

	resp := &PeerResponse{GJ: m.GJ, GL: gl, Timestamp: now}
	sig, err := sgs.Sign(u.cfg.Rand, u.gpk, cred.Key, resp.SignedTranscript())
	if err != nil {
		return nil, nil, fmt.Errorf("user %q: sign M̃.2: %w", u.ID(), err)
	}
	resp.Sig = sig

	// K_{r_j, r_l} = (g^{r_j})^{r_l}.
	dh := new(bn256.G1).ScalarMult(m.GJ, rl)
	id := NewSessionID(m.GJ, gl)
	sess := newSession(id, "peer", dh.Marshal(), sessionTranscript(m.GJ, gl), now)

	u.mu.Lock()
	u.sessions[id] = sess
	u.mu.Unlock()
	return resp, sess, nil
}

// HandlePeerResponse runs the initiator side of M̃.2 → M̃.3: verify the
// responder's signature and revocation status, derive the key, and emit
// the encrypted confirmation.
func (u *User) HandlePeerResponse(m *PeerResponse) (*PeerConfirm, *Session, error) {
	u.mu.Lock()
	pend, ok := u.pendingPeer[string(m.GJ.Marshal())]
	u.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: no pending peer AKA", ErrNoSession)
	}

	now := u.cfg.Clock.Now()
	if !fresh(u.cfg, now, m.Timestamp) {
		return nil, nil, fmt.Errorf("%w: M̃.2 ts2", ErrReplay)
	}
	// Paper Step 3 of the user–user AKA: ts2 − ts1 must lie within the
	// acceptable delay window.
	ts1 := time.Unix(0, pend.ts)
	if d := m.Timestamp.Sub(ts1); d < 0 || d > u.cfg.FreshnessWindow {
		return nil, nil, fmt.Errorf("%w: ts2-ts1 delay %v", ErrReplay, d)
	}
	transcript := m.SignedTranscript()
	if err := sgs.Verify(u.gpk, transcript, m.Sig); err != nil {
		return nil, nil, fmt.Errorf("%w: %v", ErrBadAccessRequest, err)
	}
	if tokens := u.revocationTokens(); len(tokens) > 0 {
		if revoked, _ := sgs.IsRevoked(u.gpk, transcript, m.Sig, tokens); revoked {
			return nil, nil, ErrRevokedUser
		}
	}

	// K_{r_j, r_l} = (g^{r_l})^{r_j}.
	dh := new(bn256.G1).ScalarMult(m.GL, pend.rj)
	id := NewSessionID(m.GJ, m.GL)
	sess := newSession(id, "peer", dh.Marshal(), sessionTranscript(m.GJ, m.GL), now)

	payload := wire.NewWriter(192)
	payload.BytesField(m.GJ.Marshal())
	payload.BytesField(m.GL.Marshal())
	payload.Uint64(uint64(pend.ts))
	payload.Time(m.Timestamp)
	ct, err := symcrypto.Seal(u.cfg.Rand, sess.keys.Enc, payload.Bytes(), id[:])
	if err != nil {
		return nil, nil, fmt.Errorf("user %q: confirm: %w", u.ID(), err)
	}

	u.mu.Lock()
	delete(u.pendingPeer, string(m.GJ.Marshal()))
	u.sessions[id] = sess
	u.mu.Unlock()
	return &PeerConfirm{GJ: m.GJ, GL: m.GL, Ciphertext: ct}, sess, nil
}

// HandlePeerConfirm completes the responder side on M̃.3: decrypt the
// confirmation with the already-derived session key and check the echoed
// identifiers.
func (u *User) HandlePeerConfirm(m *PeerConfirm) (*Session, error) {
	id := NewSessionID(m.GJ, m.GL)
	u.mu.Lock()
	sess, ok := u.sessions[id]
	u.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: no session for M̃.3", ErrNoSession)
	}
	pt, err := symcrypto.Open(sess.keys.Enc, m.Ciphertext, id[:])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfirmation, err)
	}
	r := wire.NewReader(pt)
	gjRaw, err := r.BytesField()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfirmation, err)
	}
	glRaw, err := r.BytesField()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfirmation, err)
	}
	if string(gjRaw) != string(m.GJ.Marshal()) || string(glRaw) != string(m.GL.Marshal()) {
		return nil, fmt.Errorf("%w: transcript mismatch", ErrBadConfirmation)
	}
	return sess, nil
}

// RefreshURL lets deployments push a newer URL snapshot outside of the
// beacon-driven fetch path. It is an epoch-monotonic swap: snapshots with
// older epochs (or a same-epoch re-issue with an earlier IssuedAt) are
// refused with revocation.ErrRollback, expired ones with
// revocation.ErrStale.
func (u *User) RefreshURL(snap *revocation.Snapshot) error {
	if snap.List != revocation.ListURL {
		return fmt.Errorf("user %q: refresh url: %w", u.ID(), revocation.ErrMalformed)
	}
	return u.InstallRevocationSnapshot(snap)
}
