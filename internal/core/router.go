package core

import (
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/cert"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// RouterStats counts what a router has processed; the DoS experiments
// (E6) read these to show how puzzles shed bogus load cheaply.
type RouterStats struct {
	BeaconsSent            int
	RequestsSeen           int
	RejectedPuzzle         int // shed before any pairing work
	RejectedAuth           int // failed group-signature verification
	RejectedRevoked        int
	RejectedStale          int
	SessionsEstablished    int
	SessionsResumed        int // established via ticket resumption, no pairing
	ExpensiveVerifications int // group-signature verifications performed
}

// routerCounters is the live, lock-free form of RouterStats: registry
// counter handles, resolved once at construction, so the sharded ingest
// loops never serialize on a stats mutex and the meshd /metrics endpoint
// reads the same numbers the experiments judge. The registry belongs to
// the router (not the serving transport) so counts survive transport
// restarts — the restart soaks account pairings across incarnations.
type routerCounters struct {
	beaconsSent            *metrics.Counter
	requestsSeen           *metrics.Counter
	rejectedPuzzle         *metrics.Counter
	rejectedAuth           *metrics.Counter
	rejectedRevoked        *metrics.Counter
	rejectedStale          *metrics.Counter
	sessionsEstablished    *metrics.Counter
	sessionsResumed        *metrics.Counter
	expensiveVerifications *metrics.Counter
}

func newRouterCounters(reg *metrics.Registry) routerCounters {
	return routerCounters{
		beaconsSent:            reg.Counter("router_beacons_sent", "signed beacons produced"),
		requestsSeen:           reg.Counter("router_requests_seen", "access requests entering precheck"),
		rejectedPuzzle:         reg.Counter("router_rejected_puzzle", "requests shed by the client puzzle before any pairing work"),
		rejectedAuth:           reg.Counter("router_rejected_auth", "requests that failed group-signature verification"),
		rejectedRevoked:        reg.Counter("router_rejected_revoked", "requests whose signer token is on the URL"),
		rejectedStale:          reg.Counter("router_rejected_stale", "requests against expired or unknown beacons"),
		sessionsEstablished:    reg.Counter("router_sessions_established", "sessions established via the full AKA"),
		sessionsResumed:        reg.Counter("router_sessions_resumed", "sessions established via ticket resumption, no pairing"),
		expensiveVerifications: reg.Counter("router_expensive_verifications", "group-signature verifications performed"),
	}
}

func (c *routerCounters) snapshot() RouterStats {
	return RouterStats{
		BeaconsSent:            int(c.beaconsSent.Load()),
		RequestsSeen:           int(c.requestsSeen.Load()),
		RejectedPuzzle:         int(c.rejectedPuzzle.Load()),
		RejectedAuth:           int(c.rejectedAuth.Load()),
		RejectedRevoked:        int(c.rejectedRevoked.Load()),
		RejectedStale:          int(c.rejectedStale.Load()),
		SessionsEstablished:    int(c.sessionsEstablished.Load()),
		SessionsResumed:        int(c.sessionsResumed.Load()),
		ExpensiveVerifications: int(c.expensiveVerifications.Load()),
	}
}

// MeshRouter is a PEACE mesh router MR_k: it broadcasts signed beacons
// (M.1), answers access requests (M.2 → M.3), and maintains the sessions
// of attached users. Routers receive epoch-numbered CRL/URL snapshot and
// delta updates from the operator over the pre-established secure channel
// (modeled as direct calls) and serve them to attaching users.
type MeshRouter struct {
	cfg     Config
	id      string
	keyPair *cert.KeyPair
	cert    *cert.Certificate
	noPub   cert.PublicKey
	gpk     *sgs.PublicKey

	// urlStore / crlStore hold the installed revocation snapshots plus the
	// bounded per-epoch delta cache served to attaching users. They keep
	// their own locks; never hold r.mu across their methods.
	urlStore *revocation.Store
	crlStore *revocation.Store

	mu sync.Mutex
	// bootEpoch is the random nonce advertised in every beacon so attached
	// users can detect a restart (it changes whenever the volatile session
	// state is lost). Zero until the serving transport installs one.
	bootEpoch uint64
	// sweep is the epoch-keyed revocation sweep cache (shared verifier,
	// parsed tokens, per-epoch fast index). Guarded by mu because group-key
	// rotation replaces it wholesale; the state itself is concurrency-safe.
	sweep       *sgs.SweepState
	outstanding map[string]*beaconState // keyed by marshaled g^{r_R}
	dosDefense  bool
	// dosMonitor, when installed, toggles dosDefense automatically from
	// the observed failure rate (Section V.A's "suspected attack").
	dosMonitor *dosMonitor
	// puzzleKey derives the seeds of stateless client puzzles for this
	// incarnation; echoed solutions are re-derived and verified with one
	// HMAC plus one hash, no per-puzzle state. Redrawn on Reboot, so a
	// restart orphans outstanding puzzles along with the sessions.
	puzzleKey [32]byte

	// sessions and sessionLog are stripe-locked: the sharded transport
	// loops hit them concurrently for every keepalive and resume, so they
	// must not funnel through r.mu. sessionLog is the paper's "network log
	// file": the authentication transcript (M.2) behind every established
	// session, kept so the operator can audit a disputed session later.
	sessions   *shardedMap[*Session]
	sessionLog *shardedMap[*AccessRequest]

	// metrics is the router-owned registry behind stats and the session /
	// ingest-queue gauges; it outlives any serving transport.
	metrics *metrics.Registry
	stats   routerCounters
}

// beaconState remembers the secrets behind one broadcast beacon. Puzzles
// are deliberately not part of it: they are stateless (see dospuzzle.go),
// so a solution can answer any sufficiently fresh challenge — the one in
// the beacon the client holds, or the one a RejectPuzzle reply carried.
type beaconState struct {
	g       *bn256.G1
	gr      *bn256.G1
	rR      *big.Int
	sentAt  time.Time
	expired bool
}

// NewMeshRouter creates a router with a fresh key pair. The certificate
// must be obtained from the operator via EnrollRouter and installed with
// SetCertificate, after which beacons can be produced.
func NewMeshRouter(cfg Config, id string, noPub cert.PublicKey, gpk *sgs.PublicKey) (*MeshRouter, error) {
	cfg = cfg.withDefaults()
	kp, err := cert.GenerateKeyPair(cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("router %q: %w", id, err)
	}
	urlStore, err := revocation.NewStore(revocation.ListURL, noPub)
	if err != nil {
		return nil, fmt.Errorf("router %q: %w", id, err)
	}
	crlStore, err := revocation.NewStore(revocation.ListCRL, noPub)
	if err != nil {
		return nil, fmt.Errorf("router %q: %w", id, err)
	}
	reg := metrics.NewRegistry()
	r := &MeshRouter{
		cfg:         cfg,
		id:          id,
		keyPair:     kp,
		noPub:       noPub,
		gpk:         gpk,
		urlStore:    urlStore,
		crlStore:    crlStore,
		sweep:       sgs.NewSweepState(gpk),
		outstanding: make(map[string]*beaconState),
		sessions:    newShardedMap[*Session](),
		sessionLog:  newShardedMap[*AccessRequest](),
		metrics:     reg,
		stats:       newRouterCounters(reg),
	}
	if _, err := io.ReadFull(cfg.Rand, r.puzzleKey[:]); err != nil {
		return nil, fmt.Errorf("router %q: puzzle key: %w", id, err)
	}
	reg.GaugeFunc("router_sessions", "sessions currently held", func() int64 {
		return int64(r.sessions.len())
	})
	reg.GaugeFunc("router_session_log", "audit transcripts currently held", func() int64 {
		return int64(r.sessionLog.len())
	})
	return r, nil
}

// Metrics returns the router-owned registry, so the serving daemon can
// expose the core counters next to the transport's.
func (r *MeshRouter) Metrics() *metrics.Registry { return r.metrics }

// ID returns the router identifier MR_k.
func (r *MeshRouter) ID() string { return r.id }

// Public returns RPK_k for certificate enrollment.
func (r *MeshRouter) Public() cert.PublicKey { return r.keyPair.Public() }

// SetCertificate installs the operator-issued certificate.
func (r *MeshRouter) SetCertificate(c *cert.Certificate) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.cert = c
}

// UpdateRevocations installs fresh CRL/URL bundles (the periodic secure
// channel from the operator). Installation is epoch-monotonic: a bundle
// carrying an older epoch — or a same-epoch snapshot re-issued with an
// earlier IssuedAt — is refused with revocation.ErrRollback and leaves
// the installed state untouched. Either bundle may be nil to update just
// one list. On a URL change the revocation sweep cache is re-keyed to the
// new epoch.
func (r *MeshRouter) UpdateRevocations(crl, url *revocation.Bundle) error {
	now := r.cfg.Clock.Now()
	if crl != nil {
		if err := r.crlStore.InstallBundle(crl, now); err != nil {
			return fmt.Errorf("router %q: crl update: %w", r.id, err)
		}
	}
	if url != nil {
		if err := r.urlStore.InstallBundle(url, now); err != nil {
			return fmt.Errorf("router %q: url update: %w", r.id, err)
		}
		if err := r.refreshSweep(); err != nil {
			return fmt.Errorf("router %q: url update: %w", r.id, err)
		}
	}
	return nil
}

// refreshSweep re-keys the sweep cache from the currently installed URL
// snapshot.
func (r *MeshRouter) refreshSweep() error {
	snap, ok := r.urlStore.Current()
	if !ok {
		return nil
	}
	tokens, err := parseURLTokens(snap)
	if err != nil {
		return err
	}
	r.sweepState().Update(snap.Epoch, tokens)
	return nil
}

// sweepState returns the current sweep cache (rotation swaps it).
func (r *MeshRouter) sweepState() *sgs.SweepState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sweep
}

// RevocationSnapshot returns the installed snapshot for one list, for
// serving full-state fetches to attaching users.
func (r *MeshRouter) RevocationSnapshot(l revocation.List) (*revocation.Snapshot, bool) {
	return r.store(l).Current()
}

// RevocationDelta returns the cached delta from fromEpoch to the current
// epoch of one list, if the operator's bounded history still covers it.
func (r *MeshRouter) RevocationDelta(l revocation.List, fromEpoch uint64) (*revocation.Delta, bool) {
	return r.store(l).DeltaFrom(fromEpoch)
}

// RevocationEpoch returns the installed epoch of one list (0 when nothing
// is installed yet).
func (r *MeshRouter) RevocationEpoch(l revocation.List) uint64 {
	return r.store(l).Epoch()
}

func (r *MeshRouter) store(l revocation.List) *revocation.Store {
	if l == revocation.ListCRL {
		return r.crlStore
	}
	return r.urlStore
}

// SetBootEpoch installs the boot-epoch nonce advertised in beacons. The
// serving transport draws a fresh random nonce per process start.
func (r *MeshRouter) SetBootEpoch(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.bootEpoch = epoch
}

// BootEpoch returns the advertised boot-epoch nonce.
func (r *MeshRouter) BootEpoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bootEpoch
}

// Reboot models a router process restart: all volatile state — live
// sessions, the audit log behind them, and outstanding beacon DH secrets —
// is lost, while durable state (key pair, certificate, installed
// revocation snapshots, group public key) survives as it would on disk.
// Attached users are silently orphaned until they detect the new boot
// epoch and re-attach; counters survive so a soak can account across the
// restart.
func (r *MeshRouter) Reboot() {
	r.mu.Lock()
	r.outstanding = make(map[string]*beaconState)
	r.bootEpoch = 0
	// Redraw the puzzle key: outstanding puzzle challenges are volatile
	// state and die with the incarnation that issued them.
	_, _ = io.ReadFull(r.cfg.Rand, r.puzzleKey[:])
	r.mu.Unlock()
	r.sessions.clear()
	r.sessionLog.clear()
}

// SetDoSDefense toggles the client-puzzle mode of Section V.A.
func (r *MeshRouter) SetDoSDefense(on bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dosDefense = on
}

// Stats returns a snapshot of the router's counters.
func (r *MeshRouter) Stats() RouterStats {
	return r.stats.snapshot()
}

// Sessions returns the number of live sessions.
func (r *MeshRouter) Sessions() int {
	return r.sessions.len()
}

// SessionByID returns an established session.
func (r *MeshRouter) SessionByID(id SessionID) (*Session, bool) {
	return r.sessions.get(id)
}

// ReleaseSession drops a live session after its ownership transferred to
// another router (roaming handoff, once the grace window closed). The
// audit log entry is deliberately kept: the paper's network log file
// records every authentication this router performed, and a transferred
// session must stay as auditable here as a torn-down one.
func (r *MeshRouter) ReleaseSession(id SessionID) bool {
	return r.sessions.delete(id)
}

// Certificate returns the operator-issued certificate (nil before
// enrollment). The backbone link handshake sends it so a peer router can
// verify the link against the NO's authority key.
func (r *MeshRouter) Certificate() *cert.Certificate {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cert
}

// SignAs signs msg under the router's long-term key pair — the same key
// the certificate binds. The backbone uses it to authenticate link
// handshakes; the beacon path keeps its own internal signing.
func (r *MeshRouter) SignAs(msg []byte) ([]byte, error) {
	return r.keyPair.Sign(r.cfg.Rand, msg)
}

// RouterRevoked reports whether subjectID is on the installed CRL — the
// predicate backbone nodes pass to cert.CheckCertificate when verifying
// a peer router's link credentials.
func (r *MeshRouter) RouterRevoked(subjectID string) bool {
	return r.crlStore.Contains([]byte(subjectID))
}

// Authority returns the network operator's public key (NPK), the trust
// anchor for peer router certificates on the backbone.
func (r *MeshRouter) Authority() cert.PublicKey { return r.noPub }

// Beacon produces message M.1: fresh (g, g^{r_R}), timestamp, signature,
// certificate and the compact (epoch, digest, next-update) refs of the
// current CRL and URL — plus a client puzzle when DoS defense is on.
func (r *MeshRouter) Beacon() (*Beacon, error) {
	r.mu.Lock()
	r.observeTick(r.cfg.Clock.Now())
	certCopy := r.cert
	need := r.requiredDifficultyLocked()
	key := r.puzzleKey
	bootEpoch := r.bootEpoch
	r.mu.Unlock()

	if certCopy == nil {
		return nil, fmt.Errorf("router %q: no certificate installed", r.id)
	}
	urlSnap, urlOK := r.urlStore.Current()
	crlSnap, crlOK := r.crlStore.Current()
	if !urlOK || !crlOK {
		return nil, fmt.Errorf("router %q: no revocation lists installed", r.id)
	}

	// Fresh generator g = g1^ρ and share g^{r_R}.
	rho, err := bn256.RandomScalar(r.cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("router %q: %w", r.id, err)
	}
	g := new(bn256.G1).ScalarBaseMult(rho)
	rR, err := bn256.RandomScalar(r.cfg.Rand)
	if err != nil {
		return nil, fmt.Errorf("router %q: %w", r.id, err)
	}
	gr := new(bn256.G1).ScalarMult(g, rR)

	now := r.cfg.Clock.Now()
	b := &Beacon{
		RouterID:  r.id,
		BootEpoch: bootEpoch,
		G:         g,
		GR:        gr,
		Timestamp: now,
		Cert:      certCopy,
		URLRef:    urlSnap.Ref(),
		CRLRef:    crlSnap.Ref(),
	}
	if need > 0 {
		b.Puzzle = derivePuzzle(key, r.id, now, need)
	}
	sig, err := r.keyPair.Sign(r.cfg.Rand, b.signedBody())
	if err != nil {
		return nil, fmt.Errorf("router %q: %w", r.id, err)
	}
	b.Signature = sig

	r.mu.Lock()
	r.outstanding[string(gr.Marshal())] = &beaconState{
		g:      g,
		gr:     gr,
		rR:     rR,
		sentAt: now,
	}
	r.mu.Unlock()
	r.stats.beaconsSent.Add(1)
	return b, nil
}

// batchVerifier returns the precomputed-table verifier owned by the sweep
// cache, building it on first use.
func (r *MeshRouter) batchVerifier() *sgs.Verifier {
	return r.sweepState().Verifier()
}

// HandleAccessRequest processes message M.2 (paper Step 3): freshness,
// optional puzzle check (before any pairing work), group-signature
// verification (Eq.2), URL revocation scan (Eq.3), key computation and the
// M.3 confirmation.
func (r *MeshRouter) HandleAccessRequest(m *AccessRequest) (*AccessConfirm, *Session, error) {
	st, now, err := r.precheckAccessRequest(m)
	if err != nil {
		return nil, nil, err
	}

	// Step 3.2: group-signature verification.
	transcript := m.SignedTranscript()
	r.stats.expensiveVerifications.Add(1)
	if err := sgs.Verify(r.gpk, transcript, m.Sig); err != nil {
		r.stats.rejectedAuth.Add(1)
		r.noteFailure()
		return nil, nil, fmt.Errorf("router %q: %w: %v", r.id, ErrBadAccessRequest, err)
	}

	// Step 3.3: URL revocation scan against the cached epoch state.
	if revoked, _ := r.sweepState().Check(transcript, m.Sig); revoked {
		r.stats.rejectedRevoked.Add(1)
		return nil, nil, fmt.Errorf("router %q: %w", r.id, ErrRevokedUser)
	}

	return r.establishSession(m, st, now)
}

// AccessResult is the outcome of one access request in a batch: either a
// confirmation and session, or the error that rejected the request.
type AccessResult struct {
	Confirm *AccessConfirm
	Session *Session
	Err     error
}

// HandleAccessRequestBatch drains a burst of M.2 messages through the
// batch verification pipeline: cheap per-request checks (freshness,
// puzzles) run first, the surviving signatures are verified concurrently
// across all CPUs with the precomputed-table verifier, revocation scans
// use the parallel URL sweep, and sessions are established for the
// survivors. Results are positional — out[i] belongs to ms[i] — and one
// bad request never affects its neighbors.
func (r *MeshRouter) HandleAccessRequestBatch(ms []*AccessRequest) []AccessResult {
	out := make([]AccessResult, len(ms))
	states := make([]*beaconState, len(ms))
	times := make([]time.Time, len(ms))

	items := make([]sgs.BatchItem, 0, len(ms))
	idxs := make([]int, 0, len(ms))
	for i, m := range ms {
		st, now, err := r.precheckAccessRequest(m)
		if err != nil {
			out[i].Err = err
			continue
		}
		states[i], times[i] = st, now
		items = append(items, sgs.BatchItem{Msg: m.SignedTranscript(), Sig: m.Sig})
		idxs = append(idxs, i)
	}
	if len(items) == 0 {
		return out
	}

	sweep := r.sweepState()
	r.stats.expensiveVerifications.Add(int64(len(items)))
	errs := sweep.Verifier().BatchVerify(items)

	for j, verr := range errs {
		i := idxs[j]
		m := ms[i]
		if verr != nil {
			// Attribute the failure with the reference verifier: the batch
			// path and the paper's Eq.2 must agree on every rejection.
			if refErr := sgs.Verify(r.gpk, items[j].Msg, m.Sig); refErr != nil {
				verr = refErr
			}
			r.stats.rejectedAuth.Add(1)
			r.noteFailure()
			out[i].Err = fmt.Errorf("router %q: %w: %v", r.id, ErrBadAccessRequest, verr)
			continue
		}
		if revoked, _ := sweep.Check(items[j].Msg, m.Sig); revoked {
			r.stats.rejectedRevoked.Add(1)
			out[i].Err = fmt.Errorf("router %q: %w", r.id, ErrRevokedUser)
			continue
		}
		confirm, sess, err := r.establishSession(m, states[i], times[i])
		out[i] = AccessResult{Confirm: confirm, Session: sess, Err: err}
	}
	return out
}

// precheckAccessRequest runs the cheap, pre-pairing checks of Step 3.1
// (and the optional puzzle gate) and returns the matched beacon state and
// the arrival time.
func (r *MeshRouter) precheckAccessRequest(m *AccessRequest) (*beaconState, time.Time, error) {
	r.stats.requestsSeen.Add(1)
	r.mu.Lock()
	st := r.outstanding[string(m.GR.Marshal())]
	need := r.requiredDifficultyLocked()
	key := r.puzzleKey
	now := r.cfg.Clock.Now()
	r.mu.Unlock()

	// DoS defense: verify the puzzle solution before anything else — even
	// the beacon lookup result must not leak work to a solution-less flood.
	if need > 0 {
		if !m.HasSolution {
			r.stats.rejectedPuzzle.Add(1)
			return nil, now, fmt.Errorf("router %q: %w", r.id, ErrPuzzleRequired)
		}
		if err := verifyPuzzleSolution(key, r.id, m.PuzzleIssuedAt, m.PuzzleDifficulty, m.Solution, need, now, r.cfg); err != nil {
			r.stats.rejectedPuzzle.Add(1)
			return nil, now, fmt.Errorf("router %q: %w", r.id, err)
		}
	}

	// Step 3.1: freshness of g^{r_R} and ts_2.
	if st == nil || st.expired {
		r.stats.rejectedStale.Add(1)
		r.noteFailure()
		return nil, now, fmt.Errorf("router %q: unknown g^rR: %w", r.id, ErrReplay)
	}
	if !fresh(r.cfg, now, m.Timestamp) {
		r.stats.rejectedStale.Add(1)
		r.noteFailure()
		return nil, now, fmt.Errorf("router %q: ts2: %w", r.id, ErrReplay)
	}
	return st, now, nil
}

// establishSession runs Step 3.4 for an authenticated request:
// K_{k,j} = (g^{r_j})^{r_R}, session keys, and M.3.
func (r *MeshRouter) establishSession(m *AccessRequest, st *beaconState, now time.Time) (*AccessConfirm, *Session, error) {
	dh := new(bn256.G1).ScalarMult(m.GJ, st.rR)
	id := NewSessionID(m.GR, m.GJ)
	sess := newSession(id, "user", dh.Marshal(), sessionTranscript(m.GR, m.GJ), now)

	payload := wire.NewWriter(192)
	payload.StringField(r.id)
	payload.BytesField(m.GJ.Marshal())
	payload.BytesField(m.GR.Marshal())
	ct, err := symcrypto.Seal(r.cfg.Rand, sess.keys.Enc, payload.Bytes(), id[:])
	if err != nil {
		return nil, nil, fmt.Errorf("router %q: confirm: %w", r.id, err)
	}

	r.sessions.put(id, sess)
	r.sessionLog.put(id, m)
	r.stats.sessionsEstablished.Add(1)

	return &AccessConfirm{GJ: m.GJ, GR: m.GR, Ciphertext: ct}, sess, nil
}

// LoggedAccessRequest retrieves the authentication transcript behind an
// established session from the router's log — the paper's audit Step 1:
// "find the corresponding authentication session message (M.2) from the
// network log file".
func (r *MeshRouter) LoggedAccessRequest(id SessionID) (*AccessRequest, bool) {
	return r.sessionLog.get(id)
}

// RetireBeacon marks a beacon's DH share as no longer acceptable (e.g.
// after its period elapsed). Kept simple: routers in the simulator retire
// beacons when emitting new ones beyond a window.
func (r *MeshRouter) RetireBeacon(gr *bn256.G1) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.outstanding[string(gr.Marshal())]; ok {
		st.expired = true
	}
}

// noteFailure feeds one rejected access request to the adaptive DoS
// monitor (which keeps its sliding window under r.mu).
func (r *MeshRouter) noteFailure() {
	r.mu.Lock()
	r.observeFailure(r.cfg.Clock.Now())
	r.mu.Unlock()
}
