package core

import "time"

// Adaptive DoS defense. The paper's client-puzzle mechanism (Section V.A)
// is explicitly conditional: "When there is no evidence of attack, a mesh
// router processes (M.2) normally. But when under a suspected DoS attack,
// the mesh router will attach a cryptographic puzzle to every (M.1)".
// This file implements the suspicion trigger — a sliding-window failure
// monitor that flips puzzle mode on when the rate of failed access
// requests exceeds a threshold and back off after a quiet period — plus
// the closed-loop difficulty controller: once suspicious, the demanded
// difficulty ratchets up while ingest load stays high and decays one step
// per interval once it subsides, returning to zero within a bounded
// interval after the flood stops so legitimate clients never pay for a
// quiet network.

// DoSPolicy configures adaptive puzzle defense.
type DoSPolicy struct {
	// Enabled turns the adaptive controller on.
	Enabled bool
	// Window is the sliding observation window. Default 10s.
	Window time.Duration
	// SuspicionThreshold is the number of *failed* access requests within
	// Window that triggers puzzle mode. Default 8.
	SuspicionThreshold int
	// QuietPeriod is how long the failure rate must stay below the
	// threshold before puzzles are dropped again. Default 2×Window.
	QuietPeriod time.Duration

	// BaseDifficulty is the puzzle difficulty demanded the moment
	// suspicion trips. Default 8.
	BaseDifficulty uint8
	// MaxDifficulty caps the ratchet. Default BaseDifficulty+8.
	MaxDifficulty uint8
	// StepInterval is the minimum spacing between ratchet-ups: at most one
	// +1 difficulty step per interval while load stays high. Default 2s.
	StepInterval time.Duration
	// DecayInterval paces the way down: one -1 difficulty step per
	// interval once load has stayed low for at least one interval.
	// Default 5s.
	DecayInterval time.Duration
	// HighLoad and LowLoad bound the load score (max of ingest-queue fill
	// fraction and rate-limiter drop fraction, both in [0,1]) that drives
	// the ratchet: above HighLoad difficulty steps up, below LowLoad it
	// decays. Defaults 0.5 and 0.1.
	HighLoad float64
	LowLoad  float64
}

func (p DoSPolicy) withDefaults() DoSPolicy {
	if p.Window == 0 {
		p.Window = 10 * time.Second
	}
	if p.SuspicionThreshold == 0 {
		p.SuspicionThreshold = 8
	}
	if p.QuietPeriod == 0 {
		p.QuietPeriod = 2 * p.Window
	}
	if p.BaseDifficulty == 0 {
		p.BaseDifficulty = 8
	}
	if p.MaxDifficulty == 0 {
		p.MaxDifficulty = p.BaseDifficulty + 8
	}
	if p.MaxDifficulty < p.BaseDifficulty {
		p.MaxDifficulty = p.BaseDifficulty
	}
	if p.StepInterval == 0 {
		p.StepInterval = 2 * time.Second
	}
	if p.DecayInterval == 0 {
		p.DecayInterval = 5 * time.Second
	}
	if p.HighLoad == 0 {
		p.HighLoad = 0.5
	}
	if p.LowLoad == 0 {
		p.LowLoad = 0.1
	}
	return p
}

// LoadSample is one controller observation of ingest pressure, fed
// periodically by the serving transport. RateDropped and RequestsSeen are
// cumulative counters — the controller diffs consecutive samples itself.
type LoadSample struct {
	// QueueDepth/QueueCapacity describe the verification ingest queue.
	QueueDepth    int
	QueueCapacity int
	// RateDropped is the cumulative count of datagrams the ingress rate
	// limiter shed. Drops are both a load signal and failure evidence:
	// a flood that the limiter absorbs must still trip suspicion.
	RateDropped uint64
	// RequestsSeen is the cumulative count of handshake datagrams that
	// passed the limiter (the denominator of the drop fraction).
	RequestsSeen uint64
}

// dosMonitor tracks recent authentication failures and the graded
// difficulty state.
type dosMonitor struct {
	policy   DoSPolicy
	failures []time.Time
	// suspicious reports the current mode.
	suspicious bool
	// lastTrigger is when the threshold was last exceeded.
	lastTrigger time.Time

	// difficulty is the currently demanded puzzle difficulty (0 when the
	// monitor is not suspicious).
	difficulty uint8
	// lastStep/lastHigh/lastDecay pace the ratchet and the decay.
	lastStep  time.Time
	lastHigh  time.Time
	lastDecay time.Time
	// prevDropped/prevSeen are the cumulative baselines of the last load
	// sample; haveBaseline gates the first diff.
	prevDropped  uint64
	prevSeen     uint64
	haveBaseline bool
}

// SetDoSPolicy installs the adaptive controller. Manual SetDoSDefense
// remains available and overrides the automatic decision until the next
// observation.
func (r *MeshRouter) SetDoSPolicy(p DoSPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p = p.withDefaults()
	r.dosMonitor = &dosMonitor{policy: p}
}

// observeFailure records one failed access request and updates the mode.
// Callers hold r.mu.
func (r *MeshRouter) observeFailure(now time.Time) {
	m := r.dosMonitor
	if m == nil || !m.policy.Enabled {
		return
	}
	m.failures = append(m.failures, now)
	m.prune(now)
	if len(m.failures) >= m.policy.SuspicionThreshold {
		if !m.suspicious {
			m.suspicious = true
			m.difficulty = m.policy.BaseDifficulty
			m.lastStep = now
			m.lastHigh = now
		}
		m.lastTrigger = now
		r.dosDefense = true
	}
}

// observeTick re-evaluates the mode on any router activity. Callers hold
// r.mu.
func (r *MeshRouter) observeTick(now time.Time) {
	m := r.dosMonitor
	if m == nil || !m.policy.Enabled || !m.suspicious {
		return
	}
	m.prune(now)
	if len(m.failures) < m.policy.SuspicionThreshold &&
		now.Sub(m.lastTrigger) >= m.policy.QuietPeriod {
		m.suspicious = false
		m.difficulty = 0
		r.dosDefense = false
	}
}

func (m *dosMonitor) prune(now time.Time) {
	cutoff := now.Add(-m.policy.Window)
	keep := m.failures[:0]
	for _, t := range m.failures {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	m.failures = keep
}

// ObserveLoad feeds one ingest-pressure sample to the difficulty
// controller. High load while suspicious ratchets the demanded difficulty
// up (one step per StepInterval); low load decays it (one step per
// DecayInterval) back toward BaseDifficulty, and clearing suspicion —
// which ObserveLoad also re-evaluates — drops it to zero.
func (r *MeshRouter) ObserveLoad(s LoadSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.dosMonitor
	if m == nil || !m.policy.Enabled {
		return
	}
	now := r.cfg.Clock.Now()

	var dropDelta, seenDelta uint64
	if m.haveBaseline {
		if s.RateDropped >= m.prevDropped {
			dropDelta = s.RateDropped - m.prevDropped
		}
		if s.RequestsSeen >= m.prevSeen {
			seenDelta = s.RequestsSeen - m.prevSeen
		}
	}
	m.prevDropped, m.prevSeen, m.haveBaseline = s.RateDropped, s.RequestsSeen, true

	// Rate-limiter drops are failure evidence: a spoofed-source flood the
	// limiter absorbs must still trip puzzle mode. Cap the marks recorded
	// per sample at the threshold so a single burst cannot grow the window
	// slice without bound.
	marks := dropDelta
	if max := uint64(m.policy.SuspicionThreshold); marks > max {
		marks = max
	}
	for i := uint64(0); i < marks; i++ {
		r.observeFailure(now)
	}

	// Load score: the worst of queue pressure and limiter drop fraction.
	score := 0.0
	if s.QueueCapacity > 0 {
		score = float64(s.QueueDepth) / float64(s.QueueCapacity)
	}
	if total := dropDelta + seenDelta; total > 0 {
		if f := float64(dropDelta) / float64(total); f > score {
			score = f
		}
	}

	r.observeTick(now)
	if !m.suspicious {
		return
	}
	switch {
	case score >= m.policy.HighLoad:
		m.lastHigh = now
		if now.Sub(m.lastStep) >= m.policy.StepInterval && m.difficulty < m.policy.MaxDifficulty {
			m.difficulty++
			m.lastStep = now
		}
	case score <= m.policy.LowLoad:
		if now.Sub(m.lastHigh) >= m.policy.DecayInterval &&
			now.Sub(m.lastDecay) >= m.policy.DecayInterval &&
			m.difficulty > m.policy.BaseDifficulty {
			m.difficulty--
			m.lastDecay = now
		}
	}
}

// RecordDoSFailure feeds one externally observed authentication failure
// (a transport-level resume forgery, an undecodable handshake datagram)
// into the adaptive monitor — the same evidence stream precheck failures
// use.
func (r *MeshRouter) RecordDoSFailure() {
	r.noteFailure()
}

// RequiredDifficulty reports the puzzle difficulty the router currently
// demands from access requests: zero when defense is off, the controller's
// graded difficulty when the adaptive monitor drives it, or the static
// Config.PuzzleDifficulty when defense was enabled manually.
func (r *MeshRouter) RequiredDifficulty() uint8 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.requiredDifficultyLocked()
}

// requiredDifficultyLocked is RequiredDifficulty with r.mu held.
func (r *MeshRouter) requiredDifficultyLocked() uint8 {
	if !r.dosDefense {
		return 0
	}
	if m := r.dosMonitor; m != nil && m.policy.Enabled && m.difficulty > 0 {
		return m.difficulty
	}
	return r.cfg.PuzzleDifficulty
}

// DoSDefenseActive reports whether puzzles are currently demanded.
func (r *MeshRouter) DoSDefenseActive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dosDefense
}
