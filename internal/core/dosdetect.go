package core

import "time"

// Adaptive DoS defense. The paper's client-puzzle mechanism (Section V.A)
// is explicitly conditional: "When there is no evidence of attack, a mesh
// router processes (M.2) normally. But when under a suspected DoS attack,
// the mesh router will attach a cryptographic puzzle to every (M.1)".
// This file implements the suspicion trigger: a sliding-window request
// rate monitor that flips puzzle mode on when the rate of failed access
// requests exceeds a threshold and back off after a quiet period.

// DoSPolicy configures adaptive puzzle defense.
type DoSPolicy struct {
	// Enabled turns the adaptive controller on.
	Enabled bool
	// Window is the sliding observation window. Default 10s.
	Window time.Duration
	// SuspicionThreshold is the number of *failed* access requests within
	// Window that triggers puzzle mode. Default 8.
	SuspicionThreshold int
	// QuietPeriod is how long the failure rate must stay below the
	// threshold before puzzles are dropped again. Default 2×Window.
	QuietPeriod time.Duration
}

func (p DoSPolicy) withDefaults() DoSPolicy {
	if p.Window == 0 {
		p.Window = 10 * time.Second
	}
	if p.SuspicionThreshold == 0 {
		p.SuspicionThreshold = 8
	}
	if p.QuietPeriod == 0 {
		p.QuietPeriod = 2 * p.Window
	}
	return p
}

// dosMonitor tracks recent authentication failures.
type dosMonitor struct {
	policy   DoSPolicy
	failures []time.Time
	// suspicious reports the current mode.
	suspicious bool
	// lastTrigger is when the threshold was last exceeded.
	lastTrigger time.Time
}

// SetDoSPolicy installs the adaptive controller. Manual SetDoSDefense
// remains available and overrides the automatic decision until the next
// observation.
func (r *MeshRouter) SetDoSPolicy(p DoSPolicy) {
	r.mu.Lock()
	defer r.mu.Unlock()
	p = p.withDefaults()
	r.dosMonitor = &dosMonitor{policy: p}
}

// observeFailure records one failed access request and updates the mode.
// Callers hold r.mu.
func (r *MeshRouter) observeFailure(now time.Time) {
	m := r.dosMonitor
	if m == nil || !m.policy.Enabled {
		return
	}
	m.failures = append(m.failures, now)
	m.prune(now)
	if len(m.failures) >= m.policy.SuspicionThreshold {
		if !m.suspicious {
			m.suspicious = true
		}
		m.lastTrigger = now
		r.dosDefense = true
	}
}

// observeTick re-evaluates the mode on any router activity. Callers hold
// r.mu.
func (r *MeshRouter) observeTick(now time.Time) {
	m := r.dosMonitor
	if m == nil || !m.policy.Enabled || !m.suspicious {
		return
	}
	m.prune(now)
	if len(m.failures) < m.policy.SuspicionThreshold &&
		now.Sub(m.lastTrigger) >= m.policy.QuietPeriod {
		m.suspicious = false
		r.dosDefense = false
	}
}

func (m *dosMonitor) prune(now time.Time) {
	cutoff := now.Add(-m.policy.Window)
	keep := m.failures[:0]
	for _, t := range m.failures {
		if t.After(cutoff) {
			keep = append(keep, t)
		}
	}
	m.failures = keep
}

// DoSDefenseActive reports whether puzzles are currently demanded.
func (r *MeshRouter) DoSDefenseActive() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dosDefense
}
