package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

func TestUserRouterAKAHappyPath(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	us, rs := tb.runAKA(t, u, r, "grp-0")
	if us.ID != rs.ID {
		t.Fatal("session ids differ")
	}
	if !us.keysEqual(rs) {
		t.Fatal("session keys differ")
	}

	// Encrypted traffic flows both ways.
	f, err := us.SealData(rand.Reader, []byte("uplink packet"))
	if err != nil {
		t.Fatal(err)
	}
	f2, err := UnmarshalDataFrame(f.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	pt, err := rs.OpenData(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(pt, []byte("uplink packet")) {
		t.Fatal("payload mismatch")
	}

	g, err := rs.SealData(rand.Reader, []byte("downlink packet"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := us.OpenData(g); err != nil {
		t.Fatal(err)
	}

	// MAC-only frames also authenticate.
	h := us.AuthData([]byte("mac-only packet"))
	if _, err := rs.OpenData(h); err != nil {
		t.Fatal(err)
	}
}

func TestAKAIsThreeMessages(t *testing.T) {
	// The paper's communication-overhead claim: exactly three messages,
	// with the user transmitting a single group signature.
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	m3, _, err := r.HandleAccessRequest(m2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.HandleAccessConfirm(m3); err != nil {
		t.Fatal(err)
	}
	// Three messages total: beacon (M.1), request (M.2), confirm (M.3) —
	// demonstrated by the fact that the handshake above needed no others.
}

func TestReplayOfAccessRequestRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatal(err)
	}

	// Same M.2 much later: outside the freshness window.
	tb.clock.Advance(5 * time.Minute)
	if _, _, err := r.HandleAccessRequest(m2); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed stale M.2 accepted: %v", err)
	}
}

func TestStaleBeaconRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	tb.clock.Advance(10 * time.Minute)
	if _, err := u.HandleBeacon(beacon, "grp-0"); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale beacon accepted: %v", err)
	}
}

func TestUnknownGRRejected(t *testing.T) {
	// An M.2 referencing a g^{r_R} the router never announced must be
	// rejected (phished or cross-router replay).
	tb := newTestbed(t, 1, 1, 2)
	u := tb.user("0", 0)
	r0 := tb.routers["MR-0"]
	r1 := tb.routers["MR-1"]

	beacon, err := r0.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r1.HandleAccessRequest(m2); !errors.Is(err, ErrReplay) {
		t.Fatalf("cross-router M.2 accepted: %v", err)
	}
}

func TestRogueRouterRejectedByUser(t *testing.T) {
	// A router with no operator-issued certificate (an adversarial phishing
	// router with a self-made identity) cannot get its beacon accepted.
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)

	rogue, err := NewMeshRouter(tb.cfg, "MR-rogue", tb.no.Authority(), tb.no.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	// The rogue self-signs a certificate with its own key instead of NSK.
	selfSigner := rogue.keyPair
	selfCert, err := issueSelfCert(tb.cfg, selfSigner, "MR-rogue", tb.clock.Now().Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	rogue.SetCertificate(selfCert)
	crl, url, err := tb.no.RevocationBundles()
	if err != nil {
		t.Fatal(err)
	}
	if err := rogue.UpdateRevocations(crl, url); err != nil {
		t.Fatal(err)
	}

	beacon, err := rogue.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.HandleBeacon(beacon, "grp-0"); !errors.Is(err, ErrBadBeacon) {
		t.Fatalf("rogue beacon accepted: %v", err)
	}
}

func TestRevokedRouterRejectedByUser(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	tb.no.RevokeRouter("MR-0")
	tb.pushRevocations(t)

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.HandleBeacon(beacon, "grp-0"); !errors.Is(err, ErrBadBeacon) {
		t.Fatalf("revoked router's beacon accepted: %v", err)
	}
}

func TestRevokedUserRejectedByRouter(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	victim := tb.user("0", 0)
	innocent := tb.user("0", 1)
	r := tb.routers["MR-0"]

	// Revoke the victim's key (slot 0 of grp-0) and distribute the URL.
	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	tb.pushRevocations(t)

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := victim.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2); !errors.Is(err, ErrRevokedUser) {
		t.Fatalf("revoked user admitted: %v", err)
	}

	// The innocent user (slot 1) still gets in.
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2b, err := innocent.HandleBeacon(beacon2, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2b); err != nil {
		t.Fatalf("innocent user rejected: %v", err)
	}
}

func TestOutsiderCannotForgeAccessRequest(t *testing.T) {
	// An outsider without any group private key fabricates an M.2 by
	// splicing a signature from a different transcript.
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}

	// Splice: fresh beacon, old signature.
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	forged := &AccessRequest{
		GJ:        m2.GJ,
		GR:        beacon2.GR,
		Timestamp: tb.clock.Now(),
		Sig:       m2.Sig,
	}
	if _, _, err := r.HandleAccessRequest(forged); !errors.Is(err, ErrBadAccessRequest) {
		t.Fatalf("spliced M.2 accepted: %v", err)
	}
}

func TestConfirmationFromWrongRouterRejected(t *testing.T) {
	// A man-in-the-middle cannot complete the handshake with its own M.3:
	// without r_R it cannot produce a ciphertext under the session key.
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}

	forged := &AccessConfirm{GJ: m2.GJ, GR: m2.GR, Ciphertext: []byte("garbage")}
	if _, err := u.HandleAccessConfirm(forged); !errors.Is(err, ErrBadConfirmation) {
		t.Fatalf("forged M.3 accepted: %v", err)
	}
}

func TestSessionReplayRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]
	us, rs := tb.runAKA(t, u, r, "grp-0")

	f, err := us.SealData(rand.Reader, []byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.OpenData(f); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.OpenData(f); !errors.Is(err, ErrReplay) {
		t.Fatalf("replayed frame accepted: %v", err)
	}
}

func TestSessionsHaveIndependentKeys(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	s1, _ := tb.runAKA(t, u, r, "grp-0")
	s2, _ := tb.runAKA(t, u, r, "grp-0")
	if s1.ID == s2.ID {
		t.Fatal("two sessions share an identifier")
	}
	if s1.keysEqual(s2) {
		t.Fatal("two sessions share keys")
	}
}

func TestBeaconMarshalRoundTripWithPuzzle(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSDefense(true)
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if beacon.Puzzle == nil {
		t.Fatal("DoS mode beacon missing puzzle")
	}
	back, err := UnmarshalBeacon(beacon.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if back.Puzzle == nil || back.Puzzle.Difficulty != beacon.Puzzle.Difficulty {
		t.Fatal("puzzle lost in round-trip")
	}
	if !bytes.Equal(back.Signature, beacon.Signature) {
		t.Fatal("signature lost in round-trip")
	}
}

func TestMultiGroupUserChoosesRole(t *testing.T) {
	// A user enrolled in two groups (the paper's multi-faceted identity)
	// can authenticate under either role; audits attribute accordingly.
	tb := newTestbed(t, 2, 1, 1)
	u := tb.user("0", 0)
	gm1 := tb.gms["grp-1"]

	// Also enroll this user with grp-1.
	if err := EnrollUser(u, gm1, tb.ttp); err != nil {
		t.Fatal(err)
	}
	if len(u.Groups()) != 2 {
		t.Fatalf("user has %d groups, want 2", len(u.Groups()))
	}
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatal(err)
	}
	audit, err := tb.no.Audit(m2)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Group != "grp-1" {
		t.Fatalf("audit attributed to %q, want grp-1", audit.Group)
	}
}
