package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

// fastPair derives two Session instances with identical keys (the two
// ends of a resumed session) without running a full AKA testbed.
func fastPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	secret := make([]byte, ResumeSecretSize)
	if _, err := rand.Read(secret); err != nil {
		t.Fatal(err)
	}
	cn := []byte("client-nonce-16b")
	sn := []byte("server-nonce-16b")
	now := time.Unix(1754000000, 0)
	return ResumeSession(SessionID{}, secret, cn, sn, "a", now),
		ResumeSession(SessionID{}, secret, cn, sn, "b", now)
}

// The append-style AAD must be byte-identical to the Writer-built one —
// otherwise frames sealed by one path would not open under the other.
func TestAppendFrameAADMatchesWriter(t *testing.T) {
	var id SessionID
	rand.Read(id[:])
	for _, seq := range []uint64{0, 1, 255, 1 << 40, ^uint64(0)} {
		want := frameAAD(id, seq)
		got := appendFrameAAD(nil, id, seq)
		if !bytes.Equal(got, want) {
			t.Fatalf("seq %d: append AAD %x != writer AAD %x", seq, got, want)
		}
	}
}

// AppendSealedData emits the exact marshaled-DataFrame wire format:
// SealedDataLen is exact, and the standard decode+OpenData path accepts
// the frames.
func TestAppendSealedDataWireCompatible(t *testing.T) {
	us, rs := fastPair(t)
	for i, payload := range [][]byte{nil, []byte("x"), bytes.Repeat([]byte("data"), 100)} {
		frame, err := us.AppendSealedData(nil, payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(frame) != SealedDataLen(len(payload)) {
			t.Fatalf("frame %d: len %d, SealedDataLen %d", i, len(frame), SealedDataLen(len(payload)))
		}
		var f DataFrame
		if err := UnmarshalDataFrameInto(frame, &f); err != nil {
			t.Fatalf("frame %d: decode: %v", i, err)
		}
		pt, err := rs.OpenData(&f)
		if err != nil {
			t.Fatalf("frame %d: open: %v", i, err)
		}
		if !bytes.Equal(pt, payload) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
}

// The other direction: frames sealed by the random-nonce SealData path
// open under OpenDataInto, and OpenDataInto enforces the same replay
// rule.
func TestOpenDataIntoCompatAndReplay(t *testing.T) {
	us, rs := fastPair(t)
	f, err := us.SealData(rand.Reader, []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	scratch := make([]byte, 0, 4096)
	pt, err := rs.OpenDataInto(f, scratch)
	if err != nil {
		t.Fatal(err)
	}
	if string(pt) != "hello" {
		t.Fatalf("plaintext %q", pt)
	}
	if _, err := rs.OpenDataInto(f, scratch); !errors.Is(err, ErrReplay) {
		t.Fatalf("replay error = %v, want ErrReplay", err)
	}

	// Tampered ciphertext must not pass.
	f2, err := us.AppendSealedData(nil, []byte("second"))
	if err != nil {
		t.Fatal(err)
	}
	var df DataFrame
	if err := UnmarshalDataFrameInto(f2, &df); err != nil {
		t.Fatal(err)
	}
	df.Payload[len(df.Payload)-1] ^= 1
	if _, err := rs.OpenDataInto(&df, scratch); err == nil {
		t.Fatal("tampered frame opened")
	}
}

// Both directions seal under the same Enc key; the per-instance random
// nonce bases are what keeps their deterministic nonces disjoint. Two
// ends must therefore produce different ciphertexts for the same
// (seq, payload).
func TestDeterministicNoncesDirectionSeparated(t *testing.T) {
	us, rs := fastPair(t)
	a, err := us.AppendSealedData(nil, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := rs.AppendSealedData(nil, []byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("two directions produced identical sealed frames: nonce bases collided")
	}
}

// The zero-alloc seal and open paths must stay allocation-free when the
// caller provides capacity.
func TestSealOpenAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	us, rs := fastPair(t)
	payload := bytes.Repeat([]byte("p"), 256)
	dst := make([]byte, 0, 4096)
	sealAllocs := testing.AllocsPerRun(1000, func() {
		var err error
		dst, err = us.AppendSealedData(dst[:0], payload)
		if err != nil {
			t.Fatal(err)
		}
	})
	if sealAllocs != 0 {
		t.Fatalf("AppendSealedData allocs/op = %v, want 0", sealAllocs)
	}

	// Pre-seal frames so the open loop only opens (replay rule: strictly
	// increasing seq; AllocsPerRun runs the func runs+1 times).
	const n = 1100
	frames := make([][]byte, n)
	decoded := make([]DataFrame, n)
	for i := range frames {
		var err error
		if frames[i], err = us.AppendSealedData(nil, payload); err != nil {
			t.Fatal(err)
		}
		if err := UnmarshalDataFrameInto(frames[i], &decoded[i]); err != nil {
			t.Fatal(err)
		}
	}
	idx := 0
	pt := make([]byte, 0, 4096)
	openAllocs := testing.AllocsPerRun(1000, func() {
		var err error
		pt, err = rs.OpenDataInto(&decoded[idx], pt[:0])
		if err != nil {
			t.Fatal(err)
		}
		idx++
	})
	if openAllocs != 0 {
		t.Fatalf("OpenDataInto allocs/op = %v, want 0", openAllocs)
	}
}
