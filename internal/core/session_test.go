package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"
)

func testSessionPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	tb := newTestbed(t, 1, 1, 1)
	return tb.runAKA(t, tb.user("0", 0), tb.routers["MR-0"], "grp-0")
}

func TestDataFrameMarshalRoundTrip(t *testing.T) {
	us, rs := testSessionPair(t)

	for _, encrypted := range []bool{true, false} {
		var f *DataFrame
		var err error
		if encrypted {
			f, err = us.SealData(rand.Reader, []byte("payload"))
			if err != nil {
				t.Fatal(err)
			}
		} else {
			f = us.AuthData([]byte("payload"))
		}
		back, err := UnmarshalDataFrame(f.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		pt, err := rs.OpenData(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, []byte("payload")) {
			t.Fatal("payload mismatch")
		}
	}
}

func TestDataFrameTamperRejected(t *testing.T) {
	us, rs := testSessionPair(t)

	f := us.AuthData([]byte("mac-protected"))
	f.Payload[0] ^= 0xFF
	if _, err := rs.OpenData(f); err == nil {
		t.Fatal("tampered MAC frame accepted")
	}

	g, err := us.SealData(rand.Reader, []byte("aead-protected"))
	if err != nil {
		t.Fatal(err)
	}
	g.Payload[len(g.Payload)-1] ^= 0xFF
	if _, err := rs.OpenData(g); err == nil {
		t.Fatal("tampered AEAD frame accepted")
	}
}

func TestDataFrameWrongSessionRejected(t *testing.T) {
	us, _ := testSessionPair(t)
	_, rs2 := testSessionPair(t)

	f, err := us.SealData(rand.Reader, []byte("cross-session"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs2.OpenData(f); !errors.Is(err, ErrNoSession) {
		t.Fatalf("frame accepted by wrong session: %v", err)
	}
}

func TestDataFrameOutOfOrderWithinWindowRejected(t *testing.T) {
	// Strictly increasing sequence numbers: an old frame delivered after a
	// newer one is treated as a replay.
	us, rs := testSessionPair(t)

	f1 := us.AuthData([]byte("one"))
	f2 := us.AuthData([]byte("two"))
	if _, err := rs.OpenData(f2); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.OpenData(f1); !errors.Is(err, ErrReplay) {
		t.Fatalf("out-of-order old frame accepted: %v", err)
	}
}

func TestSequenceNumbersIndependentPerDirection(t *testing.T) {
	us, rs := testSessionPair(t)
	// Both sides start at 0; each direction's counter is independent.
	fu := us.AuthData([]byte("up"))
	fd := rs.AuthData([]byte("down"))
	if fu.Seq != 0 || fd.Seq != 0 {
		t.Fatalf("initial seqs = %d, %d", fu.Seq, fd.Seq)
	}
	if _, err := rs.OpenData(fu); err != nil {
		t.Fatal(err)
	}
	if _, err := us.OpenData(fd); err != nil {
		t.Fatal(err)
	}
}

func TestRetiredBeaconRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	r.RetireBeacon(beacon.GR)
	if _, _, err := r.HandleAccessRequest(m2); !errors.Is(err, ErrReplay) {
		t.Fatalf("retired beacon's M.2 accepted: %v", err)
	}
}

func TestObserveBeacon(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ObserveBeacon(beacon); err != nil {
		t.Fatal(err)
	}
	// Observation caches the generator: peer auth now works.
	if _, err := u.StartPeerAuth("grp-0"); err != nil {
		t.Fatalf("peer auth after ObserveBeacon: %v", err)
	}

	// A stale beacon is rejected by observation too.
	tb.clock.Advance(time.Hour)
	if err := u.ObserveBeacon(beacon); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale beacon observed: %v", err)
	}
}

func TestRefreshURL(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	u := tb.user("0", 1)

	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	url, err := tb.no.CurrentURL()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.RefreshURL(url); err != nil {
		t.Fatal(err)
	}

	// A forged URL (unsigned) is rejected.
	forged := &UserRevocationList{
		IssuedAt:   tb.clock.Now(),
		NextUpdate: tb.clock.Now().Add(time.Hour),
		Signature:  []byte{0x30, 0x00},
	}
	if err := u.RefreshURL(forged); err == nil {
		t.Fatal("forged URL accepted")
	}
}

func TestURLMarshalRoundTrip(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	url, err := tb.no.CurrentURL()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalUserRevocationList(url.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Tokens) != 1 || !back.Tokens[0].Equal(tok) {
		t.Fatal("URL round-trip token mismatch")
	}
	if err := back.Verify(tb.no.Authority(), tb.clock.Now()); err != nil {
		t.Fatal(err)
	}
	// Stale URL rejected.
	tb.clock.Advance(time.Hour)
	if err := back.Verify(tb.no.Authority(), tb.clock.Now()); err == nil {
		t.Fatal("stale URL verified")
	}
}
