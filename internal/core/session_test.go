package core

import (
	"bytes"
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
)

func testSessionPair(t *testing.T) (*Session, *Session) {
	t.Helper()
	tb := newTestbed(t, 1, 1, 1)
	return tb.runAKA(t, tb.user("0", 0), tb.routers["MR-0"], "grp-0")
}

func TestDataFrameMarshalRoundTrip(t *testing.T) {
	us, rs := testSessionPair(t)

	for _, encrypted := range []bool{true, false} {
		var f *DataFrame
		var err error
		if encrypted {
			f, err = us.SealData(rand.Reader, []byte("payload"))
			if err != nil {
				t.Fatal(err)
			}
		} else {
			f = us.AuthData([]byte("payload"))
		}
		back, err := UnmarshalDataFrame(f.Marshal())
		if err != nil {
			t.Fatal(err)
		}
		pt, err := rs.OpenData(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pt, []byte("payload")) {
			t.Fatal("payload mismatch")
		}
	}
}

func TestDataFrameTamperRejected(t *testing.T) {
	us, rs := testSessionPair(t)

	f := us.AuthData([]byte("mac-protected"))
	f.Payload[0] ^= 0xFF
	if _, err := rs.OpenData(f); err == nil {
		t.Fatal("tampered MAC frame accepted")
	}

	g, err := us.SealData(rand.Reader, []byte("aead-protected"))
	if err != nil {
		t.Fatal(err)
	}
	g.Payload[len(g.Payload)-1] ^= 0xFF
	if _, err := rs.OpenData(g); err == nil {
		t.Fatal("tampered AEAD frame accepted")
	}
}

func TestDataFrameWrongSessionRejected(t *testing.T) {
	us, _ := testSessionPair(t)
	_, rs2 := testSessionPair(t)

	f, err := us.SealData(rand.Reader, []byte("cross-session"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs2.OpenData(f); !errors.Is(err, ErrNoSession) {
		t.Fatalf("frame accepted by wrong session: %v", err)
	}
}

func TestDataFrameOutOfOrderWithinWindowRejected(t *testing.T) {
	// Strictly increasing sequence numbers: an old frame delivered after a
	// newer one is treated as a replay.
	us, rs := testSessionPair(t)

	f1 := us.AuthData([]byte("one"))
	f2 := us.AuthData([]byte("two"))
	if _, err := rs.OpenData(f2); err != nil {
		t.Fatal(err)
	}
	if _, err := rs.OpenData(f1); !errors.Is(err, ErrReplay) {
		t.Fatalf("out-of-order old frame accepted: %v", err)
	}
}

func TestSequenceNumbersIndependentPerDirection(t *testing.T) {
	us, rs := testSessionPair(t)
	// Both sides start at 0; each direction's counter is independent.
	fu := us.AuthData([]byte("up"))
	fd := rs.AuthData([]byte("down"))
	if fu.Seq != 0 || fd.Seq != 0 {
		t.Fatalf("initial seqs = %d, %d", fu.Seq, fd.Seq)
	}
	if _, err := rs.OpenData(fu); err != nil {
		t.Fatal(err)
	}
	if _, err := us.OpenData(fd); err != nil {
		t.Fatal(err)
	}
}

func TestRetiredBeaconRejected(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	r.RetireBeacon(beacon.GR)
	if _, _, err := r.HandleAccessRequest(m2); !errors.Is(err, ErrReplay) {
		t.Fatalf("retired beacon's M.2 accepted: %v", err)
	}
}

func TestObserveBeacon(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ObserveBeacon(beacon); err != nil {
		t.Fatal(err)
	}
	// Observation caches the generator: peer auth now works.
	if _, err := u.StartPeerAuth("grp-0"); err != nil {
		t.Fatalf("peer auth after ObserveBeacon: %v", err)
	}

	// A stale beacon is rejected by observation too.
	tb.clock.Advance(time.Hour)
	if err := u.ObserveBeacon(beacon); !errors.Is(err, ErrReplay) {
		t.Fatalf("stale beacon observed: %v", err)
	}
}

func TestRefreshURL(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	u := tb.user("0", 1)

	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	bundle, err := tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	before := u.RevocationEpoch(revocation.ListURL)
	if err := u.RefreshURL(bundle.Snapshot); err != nil {
		t.Fatal(err)
	}
	if got := u.RevocationEpoch(revocation.ListURL); got != before+1 {
		t.Fatalf("url epoch = %d after refresh, want %d", got, before+1)
	}

	// A forged snapshot (epoch bumped without re-signing) is rejected.
	forged := &revocation.Snapshot{
		List:       bundle.Snapshot.List,
		Epoch:      bundle.Snapshot.Epoch + 1,
		IssuedAt:   bundle.Snapshot.IssuedAt,
		NextUpdate: bundle.Snapshot.NextUpdate,
		Entries:    bundle.Snapshot.Entries,
		Signature:  bundle.Snapshot.Signature,
	}
	if err := u.RefreshURL(forged); err == nil {
		t.Fatal("forged URL snapshot accepted")
	}
	// A CRL snapshot is refused by RefreshURL (wrong list).
	crl, err := tb.no.CRLBundle()
	if err != nil {
		t.Fatal(err)
	}
	if err := u.RefreshURL(crl.Snapshot); !errors.Is(err, revocation.ErrMalformed) {
		t.Fatalf("CRL snapshot via RefreshURL: %v", err)
	}
}

// TestRevocationAntiRollback pins the epoch-monotonic swap on both the
// router and user installers: an older snapshot never displaces a newer
// one, and an expired snapshot is refused outright.
func TestRevocationAntiRollback(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	u := tb.user("0", 1)
	r := tb.routers["MR-0"]

	old, err := tb.no.URLBundle() // epoch as installed by newTestbed
	if err != nil {
		t.Fatal(err)
	}
	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	tb.pushRevocations(t) // installs the new epoch everywhere

	// Rollback to the pre-revocation snapshot must be refused.
	if err := u.RefreshURL(old.Snapshot); !errors.Is(err, revocation.ErrRollback) {
		t.Fatalf("user accepted URL rollback: %v", err)
	}
	if err := r.UpdateRevocations(nil, old); !errors.Is(err, revocation.ErrRollback) {
		t.Fatalf("router accepted URL rollback: %v", err)
	}
	// The revoked token is still screened after the refused rollback.
	fresh, err := tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	if snap, ok := r.RevocationSnapshot(revocation.ListURL); !ok || snap.Epoch != fresh.Snapshot.Epoch {
		t.Fatal("router URL state damaged by refused rollback")
	}

	// An expired snapshot is refused even at a newer epoch.
	tb.no.RevokeUserKey(mustToken(t, tb, "grp-0", 1))
	expired, err := tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	tb.clock.Advance(24 * time.Hour) // past NextUpdate
	if err := u.RefreshURL(expired.Snapshot); !errors.Is(err, revocation.ErrStale) {
		t.Fatalf("user accepted expired URL: %v", err)
	}
	if err := r.UpdateRevocations(nil, expired); !errors.Is(err, revocation.ErrStale) {
		t.Fatalf("router accepted expired URL: %v", err)
	}
}

func mustToken(t testing.TB, tb *testbed, group GroupID, idx int) *sgs.RevocationToken {
	t.Helper()
	tok, err := tb.no.TokenOf(group, idx)
	if err != nil {
		t.Fatal(err)
	}
	return tok
}

func TestURLSnapshotMarshalRoundTrip(t *testing.T) {
	tb := newTestbed(t, 1, 2, 1)
	tok, err := tb.no.TokenOf("grp-0", 0)
	if err != nil {
		t.Fatal(err)
	}
	tb.no.RevokeUserKey(tok)
	bundle, err := tb.no.URLBundle()
	if err != nil {
		t.Fatal(err)
	}
	back, err := revocation.UnmarshalSnapshot(bundle.Snapshot.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	toks, err := parseURLTokens(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 1 || !toks[0].Equal(tok) {
		t.Fatal("URL snapshot round-trip token mismatch")
	}
	if err := back.Verify(tb.no.Authority(), tb.clock.Now()); err != nil {
		t.Fatal(err)
	}
	// Stale snapshot rejected.
	tb.clock.Advance(24 * time.Hour)
	if err := back.Verify(tb.no.Authority(), tb.clock.Now()); !errors.Is(err, revocation.ErrStale) {
		t.Fatalf("stale URL snapshot verified: %v", err)
	}
}
