package core

import "sync"

// sessionStripes is the stripe count of the router's session tables. A
// power of two so the stripe index is a mask over the first byte of the
// (uniformly distributed) session identifier.
const sessionStripes = 64

// shardedMap is a stripe-locked map keyed by SessionID, sized for the
// router hot path: every shard's read loop resolves keepalives and
// resumptions against it concurrently, so a single mutex would serialize
// the whole ingest tier. SessionIDs are SHA-256 outputs, so the first
// byte already spreads uniformly across stripes.
type shardedMap[V any] struct {
	stripes [sessionStripes]shardStripe[V]
}

type shardStripe[V any] struct {
	mu sync.RWMutex
	m  map[SessionID]V
}

func newShardedMap[V any]() *shardedMap[V] {
	t := &shardedMap[V]{}
	for i := range t.stripes {
		t.stripes[i].m = make(map[SessionID]V)
	}
	return t
}

func (t *shardedMap[V]) stripe(id SessionID) *shardStripe[V] {
	return &t.stripes[id[0]&(sessionStripes-1)]
}

func (t *shardedMap[V]) get(id SessionID) (V, bool) {
	s := t.stripe(id)
	s.mu.RLock()
	v, ok := s.m[id]
	s.mu.RUnlock()
	return v, ok
}

func (t *shardedMap[V]) put(id SessionID, v V) {
	s := t.stripe(id)
	s.mu.Lock()
	s.m[id] = v
	s.mu.Unlock()
}

func (t *shardedMap[V]) delete(id SessionID) bool {
	s := t.stripe(id)
	s.mu.Lock()
	_, ok := s.m[id]
	delete(s.m, id)
	s.mu.Unlock()
	return ok
}

func (t *shardedMap[V]) len() int {
	n := 0
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// clear empties every stripe (router reboot: volatile state is lost).
func (t *shardedMap[V]) clear() {
	for i := range t.stripes {
		s := &t.stripes[i]
		s.mu.Lock()
		s.m = make(map[SessionID]V)
		s.mu.Unlock()
	}
}
