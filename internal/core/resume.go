package core

import (
	"crypto/sha256"
	"time"

	"github.com/peace-mesh/peace/internal/symcrypto"
	"github.com/peace-mesh/peace/internal/wire"
)

// ResumeSecretSize is the length of a session resumption secret.
const ResumeSecretSize = 32

// ResumptionSecret derives the resumption master secret of an established
// session. Both endpoints compute the same value from the session keys, so
// the server can seal it into a self-certifying ticket while the client
// re-derives it locally — the secret itself never travels in the clear.
// Knowing the secret proves the holder completed (or resumed) the original
// AKA run; it is the symmetric stand-in for the group signature on the
// re-attach path.
func (s *Session) ResumptionSecret() []byte {
	w := wire.NewWriter(2 * symcrypto.KeySize)
	w.BytesField(s.keys.Enc[:])
	w.BytesField(s.keys.Mac[:])
	out := symcrypto.DeriveKey(w.Bytes(), "peace/resume-secret:v1")
	return out[:ResumeSecretSize]
}

// ResumeSessionID derives the identifier of a resumed session from the
// predecessor's identifier and both endpoints' nonces, so every resume run
// yields a distinct session and a replayed confirm cannot be cross-wired.
func ResumeSessionID(prev SessionID, clientNonce, serverNonce []byte) SessionID {
	h := sha256.New()
	h.Write([]byte("peace/resume-id:v1"))
	h.Write(prev[:])
	h.Write(clientNonce)
	h.Write(serverNonce)
	var id SessionID
	h.Sum(id[:0])
	return id
}

// ResumeSession derives a fresh session from a resumption secret and the
// two nonces of one resume exchange. Both endpoints call this with the
// same inputs and obtain identical keys; the transcript binds the keys to
// the predecessor session and both nonces, so neither side can be replayed
// into a key it did not negotiate.
func ResumeSession(prev SessionID, secret, clientNonce, serverNonce []byte, peer string, now time.Time) *Session {
	id := ResumeSessionID(prev, clientNonce, serverNonce)
	w := wire.NewWriter(128)
	w.StringField("peace/resume-transcript:v1")
	w.BytesField(prev[:])
	w.BytesField(clientNonce)
	w.BytesField(serverNonce)
	return newSession(id, peer, secret, w.Bytes(), now)
}

// AdoptSession installs a session the transport established out of band
// (ticket resumption) into the user's session table, mirroring what
// HandleAccessConfirm does for a full AKA run.
func (u *User) AdoptSession(sess *Session) {
	u.mu.Lock()
	u.sessions[sess.ID] = sess
	u.mu.Unlock()
}

// AdoptResumedSession installs a ticket-resumed session and re-attaches
// its accountability escrow: the original M.2 transcript carried inside
// the ticket goes back into the network log file, so a session resumed
// across a restart stays exactly as auditable as one established by a
// full AKA run (paper audit Step 1 still finds its M.2).
func (r *MeshRouter) AdoptResumedSession(sess *Session, escrow *AccessRequest) {
	r.sessions.put(sess.ID, sess)
	if escrow != nil {
		r.sessionLog.put(sess.ID, escrow)
	}
	r.stats.sessionsResumed.Add(1)
}
