package core

import (
	"sync"
)

// IngestResult delivers the outcome of a queued access request.
type IngestResult struct {
	Confirm *AccessConfirm
	Session *Session
	Err     error
}

// ingestJob pairs a submitted request with its reply channel.
type ingestJob struct {
	m     *AccessRequest
	reply chan IngestResult
}

// IngestQueue feeds bursts of M.2 access requests through a router's batch
// verification pipeline. Submissions beyond the queue's capacity are
// rejected immediately with ErrQueueFull — bounded backpressure, in the
// spirit of the paper's DoS discussion, instead of unbounded buffering. A
// single drainer goroutine collects whatever has accumulated (up to
// maxBatch requests) and hands it to HandleAccessRequestBatch, so under
// load the expensive signature checks run batched across all CPUs while
// light load degenerates to batches of one.
type IngestQueue struct {
	router   *MeshRouter
	jobs     chan ingestJob
	maxBatch int

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// NewIngestQueue starts the drainer for router. capacity bounds the number
// of requests waiting to be verified (minimum 1); maxBatch bounds how many
// are verified in one batch (minimum 1, typically a small multiple of the
// CPU count).
func NewIngestQueue(router *MeshRouter, capacity, maxBatch int) *IngestQueue {
	if capacity < 1 {
		capacity = 1
	}
	if maxBatch < 1 {
		maxBatch = 1
	}
	q := &IngestQueue{
		router:   router,
		jobs:     make(chan ingestJob, capacity),
		maxBatch: maxBatch,
		done:     make(chan struct{}),
	}
	// The depth gauge lives in the router's registry and re-binds to the
	// newest queue (a restarted transport builds a fresh one).
	router.Metrics().GaugeFunc("router_ingest_queue_depth",
		"access requests waiting for batch verification", func() int64 {
			return int64(q.Depth())
		})
	go q.drain()
	return q
}

// Depth returns how many submitted requests are waiting to be drained.
func (q *IngestQueue) Depth() int { return len(q.jobs) }

// Submit enqueues an access request. It never blocks: a full queue returns
// ErrQueueFull and a closed queue ErrQueueClosed. On success the result
// arrives exactly once on the returned channel.
func (q *IngestQueue) Submit(m *AccessRequest) (<-chan IngestResult, error) {
	job := ingestJob{m: m, reply: make(chan IngestResult, 1)}
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return nil, ErrQueueClosed
	}
	select {
	case q.jobs <- job:
		q.mu.Unlock()
		return job.reply, nil
	default:
		q.mu.Unlock()
		return nil, ErrQueueFull
	}
}

// Close stops the drainer after the already-accepted requests have been
// answered. It is idempotent and safe to call concurrently with Submit.
func (q *IngestQueue) Close() {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		close(q.jobs)
	}
	q.mu.Unlock()
	<-q.done
}

// drain collects accumulated jobs into batches and runs them through the
// router until the queue closes.
func (q *IngestQueue) drain() {
	defer close(q.done)
	for {
		job, ok := <-q.jobs
		if !ok {
			return
		}
		batch := []ingestJob{job}
	fill:
		for len(batch) < q.maxBatch {
			select {
			case extra, more := <-q.jobs:
				if !more {
					break fill
				}
				batch = append(batch, extra)
			default:
				break fill
			}
		}

		ms := make([]*AccessRequest, len(batch))
		for i, j := range batch {
			ms[i] = j.m
		}
		results := q.router.HandleAccessRequestBatch(ms)
		for i, j := range batch {
			j.reply <- IngestResult{
				Confirm: results[i].Confirm,
				Session: results[i].Session,
				Err:     results[i].Err,
			}
		}
	}
}
