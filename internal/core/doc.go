// Package core implements the PEACE framework itself: the entities of the
// paper (network operator, trusted third party, user group managers, mesh
// routers, network users, law authority) and the protocol suite that runs
// between them.
//
// The package is organized around the paper's sections:
//
//   - Scheme setup (Section IV.A): split issuance of group private keys —
//     (grp_i, x_j) travels user-ward through the group manager while
//     A_{i,j}, masked with a pad derived from x_j, travels through the
//     offline TTP; ECDSA-signed receipts at every hand-off provide the
//     non-repudiation the tracing protocol relies on (setup.go, no.go,
//     ttp.go, gm.go, user.go).
//
//   - User–router mutual authentication and key agreement (Section IV.B):
//     the M.1 beacon / M.2 access request / M.3 confirmation exchange
//     (messages.go, router.go, user.go), with certificate and CRL checks,
//     URL (user revocation list) scans, replay windows, and
//     Diffie–Hellman key establishment feeding the symmetric session
//     layer (session.go).
//
//   - User–user mutual authentication and key agreement (Section IV.C):
//     the M̃.1–M̃.3 exchange in which both sides authenticate with group
//     signatures (user.go).
//
//   - Privacy-enhanced accountability (Section IV.D): the network
//     operator's audit that attributes a logged session to a user group
//     (and nothing more), and the law-authority trace that combines the
//     operator's audit with the group manager's records to de-anonymize a
//     specific user, checked against the signed receipts (audit.go).
//
//   - DoS defense (Section V.A): client puzzles attached to beacons when a
//     router believes it is under a connection-depletion attack
//     (router.go).
//
// All entities are safe for concurrent use unless noted otherwise; time
// and randomness are injected (Config) so tests and the mesh simulator can
// run deterministically.
package core
