package core

import (
	"fmt"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
	"github.com/peace-mesh/peace/internal/wire"
)

// This file is the glue between the protocol core and the unified
// revocation subsystem (internal/revocation). Both PEACE lists live in
// that package as opaque canonical entry sets; here we fix what an entry
// is: URL entries are 64-byte marshaled revocation tokens, CRL entries
// are router subject-ID bytes.

// urlEntries converts revocation tokens to snapshot entries.
func urlEntries(tokens []*sgs.RevocationToken) [][]byte {
	out := make([][]byte, 0, len(tokens))
	for _, t := range tokens {
		out = append(out, t.Bytes())
	}
	return out
}

// crlEntries converts router subject IDs to snapshot entries.
func crlEntries(ids []string) [][]byte {
	out := make([][]byte, 0, len(ids))
	for _, id := range ids {
		out = append(out, []byte(id))
	}
	return out
}

// parseURLTokens decodes a URL snapshot's entries back into revocation
// tokens. Entry order is the snapshot's canonical (byte-sorted) order, so
// a match index from a sweep refers to the same position on any node
// holding the same epoch.
func parseURLTokens(snap *revocation.Snapshot) ([]*sgs.RevocationToken, error) {
	tokens := make([]*sgs.RevocationToken, 0, len(snap.Entries))
	for i, e := range snap.Entries {
		a, err := new(bn256.G1).Unmarshal(e)
		if err != nil {
			return nil, fmt.Errorf("url entry %d: %w", i, err)
		}
		tokens = append(tokens, &sgs.RevocationToken{A: a})
	}
	return tokens, nil
}

// writeRef appends a revocation ref (epoch, digest, next-update) to a
// wire message — the beacon's O(1) advertisement of a list state.
func writeRef(w *wire.Writer, ref revocation.Ref) {
	w.Uint64(ref.Epoch)
	w.BytesField(ref.Digest[:])
	w.Time(ref.NextUpdate)
}

// readRef decodes a revocation ref written by writeRef.
func readRef(r *wire.Reader) (revocation.Ref, error) {
	var ref revocation.Ref
	var err error
	if ref.Epoch, err = r.Uint64(); err != nil {
		return ref, err
	}
	d, err := r.BytesField()
	if err != nil {
		return ref, err
	}
	if len(d) != revocation.DigestSize {
		return ref, fmt.Errorf("revocation ref: digest size %d", len(d))
	}
	copy(ref.Digest[:], d)
	if ref.NextUpdate, err = r.Time(); err != nil {
		return ref, err
	}
	return ref, nil
}
