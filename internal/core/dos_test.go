package core

import (
	"crypto/rand"
	"errors"
	"testing"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/sgs"
)

func TestDoSPuzzleRequiredWhenDefenseOn(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]
	r.SetDoSDefense(true)

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if !m2.HasSolution {
		t.Fatal("user did not solve the beacon puzzle")
	}
	// Legitimate user with a solution gets in.
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatalf("puzzled user rejected: %v", err)
	}

	// An attacker that strips the solution is shed before any pairing.
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2b, err := u.HandleBeacon(beacon2, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	before := r.Stats().ExpensiveVerifications
	m2b.HasSolution = false
	if _, _, err := r.HandleAccessRequest(m2b); !errors.Is(err, ErrPuzzleRequired) {
		t.Fatalf("solution-less M.2 accepted: %v", err)
	}
	after := r.Stats()
	if after.ExpensiveVerifications != before {
		t.Fatal("router performed expensive verification on a puzzle-less request")
	}
	if after.RejectedPuzzle == 0 {
		t.Fatal("cheap rejection not counted")
	}
}

func TestDoSWrongSolutionShedCheaply(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	u := tb.user("0", 0)
	r := tb.routers["MR-0"]
	r.SetDoSDefense(true)

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	m2.Solution += 12345 // wrong with overwhelming probability at difficulty 4... retry if unlucky
	before := r.Stats().ExpensiveVerifications
	_, _, err = r.HandleAccessRequest(m2)
	if err == nil {
		t.Skip("solution collision at low test difficulty; skip")
	}
	if !errors.Is(err, ErrPuzzleRequired) {
		t.Fatalf("want ErrPuzzleRequired, got %v", err)
	}
	if r.Stats().ExpensiveVerifications != before {
		t.Fatal("expensive verification performed despite wrong solution")
	}
}

// floodRouter sends bogus M.2s (garbage signatures) and returns the stats
// delta; used by the DoS experiment (E6) and this test.
func floodRouter(t testing.TB, tb *testbed, r *MeshRouter, n int, withSolutions bool) RouterStats {
	t.Helper()
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	before := r.Stats()

	for i := 0; i < n; i++ {
		k, _ := bn256.RandomScalar(rand.Reader)
		gj := new(bn256.G1).ScalarBaseMult(k)
		bogus := &AccessRequest{
			GJ:        gj,
			GR:        beacon.GR,
			Timestamp: tb.clock.Now(),
			Sig:       forgeSignature(t),
		}
		if withSolutions && beacon.Puzzle != nil {
			bogus.HasSolution = true
			bogus.Solution = beacon.Puzzle.Solve()
		}
		_, _, _ = r.HandleAccessRequest(bogus)
	}

	after := r.Stats()
	return RouterStats{
		RequestsSeen:           after.RequestsSeen - before.RequestsSeen,
		RejectedPuzzle:         after.RejectedPuzzle - before.RejectedPuzzle,
		RejectedAuth:           after.RejectedAuth - before.RejectedAuth,
		ExpensiveVerifications: after.ExpensiveVerifications - before.ExpensiveVerifications,
	}
}

// forgeSignature builds a structurally valid but cryptographically bogus
// group signature (what an outsider attacker can produce).
func forgeSignature(t testing.TB) *sgs.Signature {
	t.Helper()
	r, _ := bn256.RandomScalar(rand.Reader)
	c, _ := bn256.RandomScalar(rand.Reader)
	sa, _ := bn256.RandomScalar(rand.Reader)
	sx, _ := bn256.RandomScalar(rand.Reader)
	sd, _ := bn256.RandomScalar(rand.Reader)
	_, t1, _ := bn256.RandomG1(rand.Reader)
	_, t2, _ := bn256.RandomG1(rand.Reader)
	return &sgs.Signature{
		Mode: sgs.PerMessageGenerators,
		R:    r, T1: t1, T2: t2, C: c, SAlpha: sa, SX: sx, SDelta: sd,
	}
}

func TestDoSFloodSheddingWithPuzzles(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]

	// Without defense: every bogus request costs expensive verification.
	const n = 3
	statsOff := floodRouter(t, tb, r, n, false)
	if statsOff.ExpensiveVerifications != n {
		t.Fatalf("without defense: %d expensive verifications, want %d", statsOff.ExpensiveVerifications, n)
	}

	// With defense: solution-less floods cost zero expensive work.
	r.SetDoSDefense(true)
	statsOn := floodRouter(t, tb, r, n, false)
	if statsOn.ExpensiveVerifications != 0 {
		t.Fatalf("with defense: %d expensive verifications, want 0", statsOn.ExpensiveVerifications)
	}
	if statsOn.RejectedPuzzle != n {
		t.Fatalf("with defense: %d puzzle rejections, want %d", statsOn.RejectedPuzzle, n)
	}
}
