package core

import (
	"testing"
	"time"
)

func TestAdaptiveDoSDefenseEngagesUnderFlood(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{
		Enabled:            true,
		Window:             10 * time.Second,
		SuspicionThreshold: 5,
		QuietPeriod:        20 * time.Second,
	})

	// Normal operation: beacons carry no puzzle.
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if beacon.Puzzle != nil {
		t.Fatal("puzzle demanded with no attack evidence")
	}

	// A burst of bogus requests (garbage signatures) trips the monitor.
	for i := 0; i < 6; i++ {
		bogus := &AccessRequest{
			GJ:        beacon.GR, // arbitrary valid point
			GR:        beacon.GR,
			Timestamp: tb.clock.Now(),
			Sig:       forgeSignature(t),
		}
		_, _, _ = r.HandleAccessRequest(bogus)
		tb.clock.Advance(time.Second)
	}
	if !r.DoSDefenseActive() {
		t.Fatal("monitor did not engage under flood")
	}
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if beacon2.Puzzle == nil {
		t.Fatal("engaged mode beacon missing puzzle")
	}

	// Legitimate users still authenticate (they solve the puzzle).
	u := tb.user("0", 0)
	m2, err := u.HandleBeacon(beacon2, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if !m2.HasSolution {
		t.Fatal("user did not solve the demanded puzzle")
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatalf("legitimate user rejected in defense mode: %v", err)
	}

	// After a quiet period the defense backs off.
	tb.clock.Advance(time.Hour)
	beacon3, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if r.DoSDefenseActive() {
		t.Fatal("defense did not back off after quiet period")
	}
	if beacon3.Puzzle != nil {
		t.Fatal("beacon still carries a puzzle after back-off")
	}
}

func TestAdaptiveDoSDefenseIgnoresSparseFailures(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{
		Enabled:            true,
		Window:             5 * time.Second,
		SuspicionThreshold: 5,
	})

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	// Failures spread far apart never accumulate within the window.
	for i := 0; i < 10; i++ {
		bogus := &AccessRequest{
			GJ:        beacon.GR,
			GR:        beacon.GR,
			Timestamp: tb.clock.Now(),
			Sig:       forgeSignature(t),
		}
		_, _, _ = r.HandleAccessRequest(bogus)
		tb.clock.Advance(time.Minute)
		// Refresh the beacon so the requests stay "fresh" failures of the
		// signature check, not stale drops.
		beacon, err = r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
	}
	if r.DoSDefenseActive() {
		t.Fatal("sparse failures engaged the defense")
	}
}
