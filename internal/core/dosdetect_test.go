package core

import (
	"sync"
	"testing"
	"time"
)

func TestAdaptiveDoSDefenseEngagesUnderFlood(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{
		Enabled:            true,
		Window:             10 * time.Second,
		SuspicionThreshold: 5,
		QuietPeriod:        20 * time.Second,
	})

	// Normal operation: beacons carry no puzzle.
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if beacon.Puzzle != nil {
		t.Fatal("puzzle demanded with no attack evidence")
	}

	// A burst of bogus requests (garbage signatures) trips the monitor.
	for i := 0; i < 6; i++ {
		bogus := &AccessRequest{
			GJ:        beacon.GR, // arbitrary valid point
			GR:        beacon.GR,
			Timestamp: tb.clock.Now(),
			Sig:       forgeSignature(t),
		}
		_, _, _ = r.HandleAccessRequest(bogus)
		tb.clock.Advance(time.Second)
	}
	if !r.DoSDefenseActive() {
		t.Fatal("monitor did not engage under flood")
	}
	beacon2, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if beacon2.Puzzle == nil {
		t.Fatal("engaged mode beacon missing puzzle")
	}

	// Legitimate users still authenticate (they solve the puzzle).
	u := tb.user("0", 0)
	m2, err := u.HandleBeacon(beacon2, "grp-0")
	if err != nil {
		t.Fatal(err)
	}
	if !m2.HasSolution {
		t.Fatal("user did not solve the demanded puzzle")
	}
	if _, _, err := r.HandleAccessRequest(m2); err != nil {
		t.Fatalf("legitimate user rejected in defense mode: %v", err)
	}

	// After a quiet period the defense backs off.
	tb.clock.Advance(time.Hour)
	beacon3, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	if r.DoSDefenseActive() {
		t.Fatal("defense did not back off after quiet period")
	}
	if beacon3.Puzzle != nil {
		t.Fatal("beacon still carries a puzzle after back-off")
	}
}

func TestAdaptiveDoSDefenseIgnoresSparseFailures(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{
		Enabled:            true,
		Window:             5 * time.Second,
		SuspicionThreshold: 5,
	})

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	// Failures spread far apart never accumulate within the window.
	for i := 0; i < 10; i++ {
		bogus := &AccessRequest{
			GJ:        beacon.GR,
			GR:        beacon.GR,
			Timestamp: tb.clock.Now(),
			Sig:       forgeSignature(t),
		}
		_, _, _ = r.HandleAccessRequest(bogus)
		tb.clock.Advance(time.Minute)
		// Refresh the beacon so the requests stay "fresh" failures of the
		// signature check, not stale drops.
		beacon, err = r.Beacon()
		if err != nil {
			t.Fatal(err)
		}
	}
	if r.DoSDefenseActive() {
		t.Fatal("sparse failures engaged the defense")
	}
}

// TestDoSFailureAgesOutExactlyAtWindowBoundary pins the sliding-window
// boundary semantics: a failure recorded at time T is evidence for
// strictly less than Window — at now == T+Window it no longer counts.
func TestDoSFailureAgesOutExactlyAtWindowBoundary(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{
		Enabled:            true,
		Window:             10 * time.Second,
		SuspicionThreshold: 3,
	})

	// Two failures now: one short of the threshold.
	r.RecordDoSFailure()
	r.RecordDoSFailure()

	// Exactly Window later they are gone, so a third failure lands in an
	// empty window and must not trip suspicion.
	tb.clock.Advance(10 * time.Second)
	r.RecordDoSFailure()
	if r.DoSDefenseActive() {
		t.Fatal("failures at exactly now-Window still counted")
	}

	// Control: one nanosecond inside the window they do still count.
	r.RecordDoSFailure() // 2 in window now
	tb.clock.Advance(10*time.Second - time.Nanosecond)
	r.RecordDoSFailure()
	if !r.DoSDefenseActive() {
		t.Fatal("failures strictly inside the window were dropped")
	}
}

// TestDoSThresholdReArmsAfterClear verifies the monitor is not one-shot:
// after suspicion clears through a quiet period, a second flood must trip
// it again from a clean slate.
func TestDoSThresholdReArmsAfterClear(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{
		Enabled:            true,
		Window:             5 * time.Second,
		SuspicionThreshold: 3,
		QuietPeriod:        10 * time.Second,
	})

	for i := 0; i < 3; i++ {
		r.RecordDoSFailure()
	}
	if !r.DoSDefenseActive() {
		t.Fatal("first flood did not trip suspicion")
	}

	// Quiet period passes; any observation clears the mode.
	tb.clock.Advance(11 * time.Second)
	r.ObserveLoad(LoadSample{})
	if r.DoSDefenseActive() {
		t.Fatal("suspicion did not clear after quiet period")
	}
	if d := r.RequiredDifficulty(); d != 0 {
		t.Fatalf("difficulty %d after clear, want 0", d)
	}

	// A fresh flood must re-trip, and sub-threshold noise must not.
	r.RecordDoSFailure()
	r.RecordDoSFailure()
	if r.DoSDefenseActive() {
		t.Fatal("sub-threshold noise re-tripped a cleared monitor")
	}
	r.RecordDoSFailure()
	if !r.DoSDefenseActive() {
		t.Fatal("second flood did not re-trip suspicion")
	}
}

// TestDoSDifficultyRatchetAndDecay exercises the closed loop: sustained
// high ingest load ratchets difficulty above base one step per
// StepInterval up to the cap; once the flood stops, difficulty decays one
// step per DecayInterval and suspicion clearing zeroes it.
func TestDoSDifficultyRatchetAndDecay(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{
		Enabled:            true,
		Window:             3 * time.Second,
		SuspicionThreshold: 4,
		QuietPeriod:        4 * time.Second,
		BaseDifficulty:     4,
		MaxDifficulty:      6,
		StepInterval:       time.Second,
		DecayInterval:      time.Second,
		HighLoad:           0.5,
		LowLoad:            0.1,
	})

	// Baseline sample, then a storm: every sample sheds most datagrams.
	r.ObserveLoad(LoadSample{})
	dropped, seen := uint64(0), uint64(0)
	for i := 0; i < 4; i++ {
		tb.clock.Advance(time.Second)
		dropped += 100
		seen += 10
		r.ObserveLoad(LoadSample{RateDropped: dropped, RequestsSeen: seen})
	}
	if !r.DoSDefenseActive() {
		t.Fatal("storm did not trip suspicion")
	}
	// Trip at sample 1 sets difficulty=base; samples 2..4 each ratchet +1
	// but the cap at 6 binds.
	if d := r.RequiredDifficulty(); d != 6 {
		t.Fatalf("difficulty %d under sustained storm, want cap 6", d)
	}

	// Storm stops: cumulative counters freeze, score drops to 0. Difficulty
	// must walk 6 → 5 → 4 (one step per DecayInterval), then the quiet
	// period clears suspicion and zeroes it.
	sawBase := false
	for i := 0; i < 8 && r.DoSDefenseActive(); i++ {
		tb.clock.Advance(time.Second)
		r.ObserveLoad(LoadSample{RateDropped: dropped, RequestsSeen: seen})
		if r.RequiredDifficulty() == 4 {
			sawBase = true
		}
	}
	if !sawBase {
		t.Fatal("difficulty never decayed down to base before clearing")
	}
	if r.DoSDefenseActive() {
		t.Fatal("suspicion did not clear after the storm stopped")
	}
	if d := r.RequiredDifficulty(); d != 0 {
		t.Fatalf("difficulty %d after clear, want 0", d)
	}
}

// TestDoSMonitorConcurrentAccess hammers the monitor's public surface from
// many goroutines so the race detector can see any unlocked state.
func TestDoSMonitorConcurrentAccess(t *testing.T) {
	tb := newTestbed(t, 1, 1, 1)
	r := tb.routers["MR-0"]
	r.SetDoSPolicy(DoSPolicy{Enabled: true, SuspicionThreshold: 4})

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch (g + i) % 4 {
				case 0:
					r.RecordDoSFailure()
				case 1:
					_ = r.DoSDefenseActive()
				case 2:
					r.ObserveLoad(LoadSample{
						QueueDepth:    i % 8,
						QueueCapacity: 8,
						RateDropped:   uint64(i),
						RequestsSeen:  uint64(2 * i),
					})
				default:
					_ = r.RequiredDifficulty()
				}
			}
		}(g)
	}
	wg.Wait()
	if !r.DoSDefenseActive() {
		t.Fatal("concurrent failure stream did not trip suspicion")
	}
}
