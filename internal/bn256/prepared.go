package bn256

// PreparedG2 caches the Miller-loop line computations for a fixed G2
// argument. The ate Miller loop walks a fixed doubling/addition schedule
// over the twist point Q, and the projective line coefficients of every
// step depend only on Q; the two G1-dependent coefficients are cheap
// per-evaluation scalar products with x_P and y_P. Precomputing the Q-side
// halves the cost of evaluating e(·, Q) against many G1 points (batch
// verification, revocation sweeps against a fixed û).
//
// A PreparedG2 is immutable after construction and safe for concurrent
// use by multiple goroutines.
type PreparedG2 struct {
	infinity bool
	steps    []preparedLine
}

// PrepareG2 runs the Miller doubling/addition schedule once for q and
// records the line coefficients. The cost is comparable to one Miller loop.
func PrepareG2(q *G2) *PreparedG2 {
	if q.p.IsInfinity() {
		return &PreparedG2{infinity: true}
	}
	return &PreparedG2{steps: prepareLines(q.p)}
}

// Miller evaluates the recorded lines at g1, returning the un-finalized
// Miller value f_{T,Q}(P) exactly as Miller(g1, q) would. Combine values
// with GT.Add and reduce once with GT.Finalize.
func (pq *PreparedG2) Miller(g1 *G1) *GT {
	if pq.infinity || g1.p.IsInfinity() {
		return &GT{p: newGFp12().SetOne()}
	}
	return &GT{p: evalMiller(pq.steps, g1.p)}
}

// Pair evaluates the full pairing e(g1, Q) via the prepared lines.
func (pq *PreparedG2) Pair(g1 *G1) *GT {
	return pq.Miller(g1).Finalize()
}

// MillerCombined evaluates the product Π f_{T,Q_i}(P_i) for several
// prepared Q_i in a single pass. All ate Miller loops walk the same
// doubling/addition schedule, so the per-bit squaring of the accumulator
// can be shared across the product: n pairings cost one squaring chain plus
// n sets of line multiplications, instead of n of each. Identity arguments
// on either side contribute the neutral element. The result is
// un-finalized; reduce it with GT.Finalize (possibly after multiplying
// in further Miller values).
//
// It panics if the slices have different lengths.
func MillerCombined(preps []*PreparedG2, points []*G1) *GT {
	if len(preps) != len(points) {
		panic("bn256: MillerCombined slice length mismatch")
	}
	type active struct {
		steps []preparedLine
		x, y  gfP
	}
	acts := make([]active, 0, len(preps))
	for i, pq := range preps {
		if pq.infinity || points[i].p.IsInfinity() {
			continue
		}
		pa := newCurvePoint().Set(points[i].p)
		pa.MakeAffine()
		acts = append(acts, active{steps: pq.steps, x: pa.x, y: pa.y})
	}

	f := newGFp12().SetOne()
	if len(acts) == 0 {
		return &GT{p: f}
	}
	var c0, c1 gfP2
	idx := 0
	t := ateLoopCount
	mulLines := func() {
		for i := range acts {
			a := &acts[i]
			s := &a.steps[idx]
			c1.MulScalar(&s.c1, &a.x)
			c0.MulScalar(&s.c0, &a.y)
			f.MulLine(f, &c0, &c1, &s.c3)
		}
		idx++
	}
	for i := t.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		mulLines()
		if t.Bit(i) != 0 {
			mulLines()
		}
	}
	return &GT{p: f}
}
