package bn256

import "math/big"

// PreparedG2 caches the Miller-loop line computations for a fixed G2
// argument. The ate Miller loop walks a fixed addition chain over the
// twist point Q: at every step the slope λ' and the coefficient
// λ'·x_S − y_S of the line through the current points depend only on Q,
// while the remaining two coefficients (y_P and −λ'·x_P) are cheap
// per-evaluation scalar products with the G1 argument. Precomputing the
// Q-side removes the per-step F_p² inversion — the dominant cost of the
// affine Miller loop — so evaluating e(·, Q) against many G1 points
// (batch verification, revocation sweeps against a fixed û) costs a
// fraction of a full pairing each.
//
// A PreparedG2 is immutable after construction and safe for concurrent
// use by multiple goroutines.
type PreparedG2 struct {
	infinity bool
	steps    []preparedLine
}

// preparedLine is one line of the Miller loop: the twist-coordinate slope
// λ' and the constant coefficient λ'·x_S − y_S (the w³ slot). Both are
// normalized at construction and never written again.
type preparedLine struct {
	lam, c3 *gfP2
}

// PrepareG2 runs the Miller addition chain once for q and records the
// line coefficients. The cost is comparable to one Miller loop.
func PrepareG2(q *G2) *PreparedG2 {
	if q.p.IsInfinity() {
		return &PreparedG2{infinity: true}
	}
	qa := newTwistPoint().Set(q.p)
	qa.MakeAffine()

	base := &affineTwist{x: newGFp2().Set(qa.x), y: newGFp2().Set(qa.y)}
	r := &affineTwist{x: newGFp2().Set(qa.x), y: newGFp2().Set(qa.y)}

	t := ateLoopCount
	steps := make([]preparedLine, 0, 2*t.BitLen())
	record := func(lam, c3 *gfP2) {
		steps = append(steps, preparedLine{
			lam: newGFp2().Set(lam).Minimal(),
			c3:  newGFp2().Set(c3).Minimal(),
		})
	}
	for i := t.BitLen() - 2; i >= 0; i-- {
		lam, c3 := r.doubleStepCoeffs()
		record(lam, c3)
		if t.Bit(i) != 0 {
			lam, c3 = r.addStepCoeffs(base)
			record(lam, c3)
		}
	}
	return &PreparedG2{steps: steps}
}

// doubleStepCoeffs doubles r in place and returns the tangent slope and
// the P-independent line coefficient (doubleStep without the G1 side).
func (r *affineTwist) doubleStepCoeffs() (*gfP2, *gfP2) {
	lam := newGFp2().Square(r.x)
	three := newGFp2().Double(lam)
	three.Add(three, lam)
	den := newGFp2().Double(r.y)
	den.Invert(den)
	lam.Mul(three, den)

	c3 := newGFp2().Mul(lam, r.x)
	c3.Sub(c3, r.y)

	x3 := newGFp2().Square(lam)
	x3.Sub(x3, r.x)
	x3.Sub(x3, r.x)
	y3 := newGFp2().Sub(r.x, x3)
	y3.Mul(y3, lam)
	y3.Sub(y3, r.y)

	r.x.Set(x3)
	r.y.Set(y3)
	return lam, c3
}

// addStepCoeffs adds q to r in place and returns the chord slope and the
// P-independent line coefficient.
func (r *affineTwist) addStepCoeffs(q *affineTwist) (*gfP2, *gfP2) {
	num := newGFp2().Sub(r.y, q.y)
	den := newGFp2().Sub(r.x, q.x)
	den.Invert(den)
	lam := newGFp2().Mul(num, den)

	c3 := newGFp2().Mul(lam, q.x)
	c3.Sub(c3, q.y)

	x3 := newGFp2().Square(lam)
	x3.Sub(x3, r.x)
	x3.Sub(x3, q.x)
	y3 := newGFp2().Sub(r.x, x3)
	y3.Mul(y3, lam)
	y3.Sub(y3, r.y)

	r.x.Set(x3)
	r.y.Set(y3)
	return lam, c3
}

// Miller evaluates the recorded lines at g1, returning the un-finalized
// Miller value f_{T,Q}(P) exactly as Miller(g1, q) would. Combine values
// with GT.Add and reduce once with GT.Finalize.
func (pq *PreparedG2) Miller(g1 *G1) *GT {
	if pq.infinity || g1.p.IsInfinity() {
		return &GT{p: newGFp12().SetOne()}
	}
	pa := newCurvePoint().Set(g1.p)
	pa.MakeAffine()

	s := newMillerScratch()
	f := newGFp12().SetOne()
	idx := 0
	t := ateLoopCount
	for i := t.BitLen() - 2; i >= 0; i-- {
		leanSquare12(s.fA, f, s)
		f, s.fA = s.fA, f
		leanLine(f, pq.steps[idx], pa.x, pa.y, s)
		idx++
		if t.Bit(i) != 0 {
			leanLine(f, pq.steps[idx], pa.x, pa.y, s)
			idx++
		}
	}
	return &GT{p: f}
}

// Pair evaluates the full pairing e(g1, Q) via the prepared lines.
func (pq *PreparedG2) Pair(g1 *G1) *GT {
	return pq.Miller(g1).Finalize()
}

// MillerCombined evaluates the product Π f_{T,Q_i}(P_i) for several
// prepared Q_i in a single pass. All ate Miller loops walk the same
// addition chain, so the per-bit squaring of the accumulator can be
// shared across the product: n pairings cost one squaring chain plus n
// sets of line multiplications, instead of n of each. Identity arguments
// on either side contribute the neutral element. The result is
// un-finalized; reduce it with GT.Finalize (possibly after multiplying
// in further Miller values).
//
// It panics if the slices have different lengths.
func MillerCombined(preps []*PreparedG2, points []*G1) *GT {
	if len(preps) != len(points) {
		panic("bn256: MillerCombined slice length mismatch")
	}
	type active struct {
		steps []preparedLine
		x, y  *big.Int
	}
	acts := make([]active, 0, len(preps))
	for i, pq := range preps {
		if pq.infinity || points[i].p.IsInfinity() {
			continue
		}
		pa := newCurvePoint().Set(points[i].p)
		pa.MakeAffine()
		acts = append(acts, active{steps: pq.steps, x: pa.x, y: pa.y})
	}

	f := newGFp12().SetOne()
	if len(acts) == 0 {
		return &GT{p: f}
	}
	s := newMillerScratch()
	idx := 0
	t := ateLoopCount
	mulLines := func() {
		for _, a := range acts {
			leanLine(f, a.steps[idx], a.x, a.y, s)
		}
		idx++
	}
	for i := t.BitLen() - 2; i >= 0; i-- {
		leanSquare12(s.fA, f, s)
		f, s.fA = s.fA, f
		mulLines()
		if t.Bit(i) != 0 {
			mulLines()
		}
	}
	return &GT{p: f}
}
