package bn256

import (
	"fmt"
	"math/big"
)

// refGfP2 implements the field of size p² as a quadratic extension of the base
// field F_p with i² = −1. An element is x·i + y.
//
// Methods follow the mutate-receiver convention: c.Op(a, b) sets c = a op b
// and returns c. Receivers may alias arguments.
type refGfP2 struct {
	x, y *big.Int
}

func newRefGFp2() *refGfP2 {
	return &refGfP2{x: new(big.Int), y: new(big.Int)}
}

func (e *refGfP2) String() string {
	e.Minimal()
	return fmt.Sprintf("(%s, %s)", e.x.String(), e.y.String())
}

func (e *refGfP2) Set(a *refGfP2) *refGfP2 {
	e.x.Set(a.x)
	e.y.Set(a.y)
	return e
}

func (e *refGfP2) SetZero() *refGfP2 {
	e.x.SetInt64(0)
	e.y.SetInt64(0)
	return e
}

func (e *refGfP2) SetOne() *refGfP2 {
	e.x.SetInt64(0)
	e.y.SetInt64(1)
	return e
}

// Minimal reduces both coordinates into [0, p).
func (e *refGfP2) Minimal() *refGfP2 {
	if e.x.Sign() < 0 || e.x.Cmp(P) >= 0 {
		e.x.Mod(e.x, P)
	}
	if e.y.Sign() < 0 || e.y.Cmp(P) >= 0 {
		e.y.Mod(e.y, P)
	}
	return e
}

func (e *refGfP2) IsZero() bool {
	e.Minimal()
	return e.x.Sign() == 0 && e.y.Sign() == 0
}

func (e *refGfP2) IsOne() bool {
	e.Minimal()
	return e.x.Sign() == 0 && e.y.Cmp(big.NewInt(1)) == 0
}

func (e *refGfP2) Equal(a *refGfP2) bool {
	e.Minimal()
	a.Minimal()
	return e.x.Cmp(a.x) == 0 && e.y.Cmp(a.y) == 0
}

// Conjugate sets e = ȳ = −x·i + y, the image of a under the non-trivial
// automorphism of F_p²/F_p (which is also the p-power Frobenius).
func (e *refGfP2) Conjugate(a *refGfP2) *refGfP2 {
	e.y.Set(a.y)
	e.x.Neg(a.x)
	e.x.Mod(e.x, P)
	return e
}

func (e *refGfP2) Neg(a *refGfP2) *refGfP2 {
	e.x.Neg(a.x)
	e.x.Mod(e.x, P)
	e.y.Neg(a.y)
	e.y.Mod(e.y, P)
	return e
}

func (e *refGfP2) Add(a, b *refGfP2) *refGfP2 {
	e.x.Add(a.x, b.x)
	e.x.Mod(e.x, P)
	e.y.Add(a.y, b.y)
	e.y.Mod(e.y, P)
	return e
}

func (e *refGfP2) Sub(a, b *refGfP2) *refGfP2 {
	e.x.Sub(a.x, b.x)
	e.x.Mod(e.x, P)
	e.y.Sub(a.y, b.y)
	e.y.Mod(e.y, P)
	return e
}

func (e *refGfP2) Double(a *refGfP2) *refGfP2 {
	e.x.Lsh(a.x, 1)
	e.x.Mod(e.x, P)
	e.y.Lsh(a.y, 1)
	e.y.Mod(e.y, P)
	return e
}

// Mul sets e = a·b using Karatsuba:
// (a.x·i + a.y)(b.x·i + b.y) = (a.x·b.y + a.y·b.x)·i + (a.y·b.y − a.x·b.x).
func (e *refGfP2) Mul(a, b *refGfP2) *refGfP2 {
	tx := new(big.Int).Add(a.x, a.y)
	t := new(big.Int).Add(b.x, b.y)
	tx.Mul(tx, t) // (ax+ay)(bx+by)

	vx := new(big.Int).Mul(a.x, b.x)
	vy := new(big.Int).Mul(a.y, b.y)

	tx.Sub(tx, vx)
	tx.Sub(tx, vy)
	tx.Mod(tx, P)

	ty := new(big.Int).Sub(vy, vx)
	ty.Mod(ty, P)

	e.x.Set(tx)
	e.y.Set(ty)
	return e
}

// MulScalar sets e = a·b where b is a base-field element.
func (e *refGfP2) MulScalar(a *refGfP2, b *big.Int) *refGfP2 {
	e.x.Mul(a.x, b)
	e.x.Mod(e.x, P)
	e.y.Mul(a.y, b)
	e.y.Mod(e.y, P)
	return e
}

// MulXi sets e = a·ξ where ξ = i + 3.
func (e *refGfP2) MulXi(a *refGfP2) *refGfP2 {
	// (x·i + y)(i + 3) = (3x + y)·i + (3y − x)
	tx := new(big.Int).Lsh(a.x, 1)
	tx.Add(tx, a.x)
	tx.Add(tx, a.y)

	ty := new(big.Int).Lsh(a.y, 1)
	ty.Add(ty, a.y)
	ty.Sub(ty, a.x)

	e.x.Mod(tx, P)
	e.y.Mod(ty, P)
	return e
}

// Square sets e = a² = 2·x·y·i + (y + x)(y − x).
func (e *refGfP2) Square(a *refGfP2) *refGfP2 {
	t1 := new(big.Int).Sub(a.y, a.x)
	t2 := new(big.Int).Add(a.x, a.y)
	ty := new(big.Int).Mul(t1, t2)
	ty.Mod(ty, P)

	tx := new(big.Int).Mul(a.x, a.y)
	tx.Lsh(tx, 1)
	tx.Mod(tx, P)

	e.x.Set(tx)
	e.y.Set(ty)
	return e
}

// Invert sets e = a⁻¹ using 1/(x·i + y) = (−x·i + y)/(x² + y²).
func (e *refGfP2) Invert(a *refGfP2) *refGfP2 {
	t := new(big.Int).Mul(a.y, a.y)
	t2 := new(big.Int).Mul(a.x, a.x)
	t.Add(t, t2)

	inv := new(big.Int).ModInverse(t, P)

	e.x.Neg(a.x)
	e.x.Mul(e.x, inv)
	e.x.Mod(e.x, P)

	e.y.Mul(a.y, inv)
	e.y.Mod(e.y, P)
	return e
}

// Exp sets e = a^k by square-and-multiply.
func (e *refGfP2) Exp(a *refGfP2, k *big.Int) *refGfP2 {
	sum := newRefGFp2().SetOne()
	t := newRefGFp2()
	base := newRefGFp2().Set(a)

	for i := k.BitLen() - 1; i >= 0; i-- {
		t.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(t, base)
		} else {
			sum.Set(t)
		}
	}
	return e.Set(sum)
}

// Sqrt sets e to a square root of a and reports whether a is a square in
// F_p². It uses the complex method valid for p ≡ 3 (mod 4).
func (e *refGfP2) Sqrt(a *refGfP2) (ok bool) {
	if a.IsZero() {
		e.SetZero()
		return true
	}
	// a1 = a^((p−3)/4); α = a1²·a; x0 = a1·a.
	exp := new(big.Int).Sub(P, big.NewInt(3))
	exp.Rsh(exp, 2)
	a1 := newRefGFp2().Exp(a, exp)
	alpha := newRefGFp2().Square(a1)
	alpha.Mul(alpha, a)
	x0 := newRefGFp2().Mul(a1, a)

	negOne := newRefGFp2()
	negOne.y.Sub(P, big.NewInt(1))

	cand := newRefGFp2()
	if alpha.Equal(negOne) {
		// e = i·x0.
		cand.x.Set(x0.y)
		cand.y.Neg(x0.x)
		cand.y.Mod(cand.y, P)
	} else {
		// b = (1 + α)^((p−1)/2); e = b·x0.
		b := newRefGFp2().Add(newRefGFp2().SetOne(), alpha)
		exp = new(big.Int).Sub(P, big.NewInt(1))
		exp.Rsh(exp, 1)
		b.Exp(b, exp)
		cand.Mul(b, x0)
	}

	check := newRefGFp2().Square(cand)
	if !check.Equal(a) {
		return false
	}
	e.Set(cand)
	return true
}
