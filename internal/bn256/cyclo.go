package bn256

import "math/big"

// This file implements arithmetic that is valid only in the cyclotomic
// subgroup G_{Φ₆(p²)} of F_p¹²ˣ — the subgroup every element lands in after
// the easy part of the final exponentiation, and which contains all pairing
// values. Two structural facts make it cheaper than the generic field:
// squaring decomposes into three independent F_p⁴ squarings (Granger–Scott),
// and inversion is the p⁶-power Frobenius, i.e. a sign flip. The final
// exponentiation's hard part — three exponentiations by the curve parameter
// u plus an addition chain — spends almost all of its time in exactly these
// two operations.

// CyclotomicSquare sets e = a² assuming a lies in the cyclotomic subgroup.
// It is NOT valid for general field elements (the derivation uses
// a^(p⁶+1)·a^(p²(p²-1)) = 1 to eliminate half the coordinates).
//
// Writing a = (x0 + x1·τ + x2·τ²) + (x3 + x4·τ + x5·τ²)·ω, the compressed
// squaring of Granger–Scott "Faster squaring in the cyclotomic subgroup of
// sixth degree extensions" gives
//
//	z0 = 3(ξ·x4² + x0²) − 2·x0      z3 = 3·2ξ·x1·x5 + 2·x3
//	z1 = 3(ξ·x2² + x3²) − 2·x1      z4 = 3·2·x0·x4   + 2·x4
//	z2 = 3(ξ·x5² + x1²) − 2·x2      z5 = 3·2·x2·x3   + 2·x5
//
// for a total of nine F_p² squarings against the twelve F_p² multiplications
// of the generic Square.
func (e *gfP12) CyclotomicSquare(a *gfP12) *gfP12 {
	x0, x1, x2 := a.y.z, a.y.y, a.y.x
	x3, x4, x5 := a.x.z, a.x.y, a.x.x

	var t0, t1, t2, t3, t4, t5, t6, t7, t8 gfP2
	t0.Square(&x4)
	t1.Square(&x0)
	t6.Add(&x4, &x0)
	t6.Square(&t6)
	t6.Sub(&t6, &t0)
	t6.Sub(&t6, &t1) // 2·x4·x0

	t2.Square(&x2)
	t3.Square(&x3)
	t7.Add(&x2, &x3)
	t7.Square(&t7)
	t7.Sub(&t7, &t2)
	t7.Sub(&t7, &t3) // 2·x2·x3

	t4.Square(&x5)
	t5.Square(&x1)
	t8.Add(&x5, &x1)
	t8.Square(&t8)
	t8.Sub(&t8, &t4)
	t8.Sub(&t8, &t5)
	t8.MulXi(&t8) // 2·ξ·x5·x1

	t0.MulXi(&t0)
	t0.Add(&t0, &t1) // ξ·x4² + x0²
	t2.MulXi(&t2)
	t2.Add(&t2, &t3) // ξ·x2² + x3²
	t4.MulXi(&t4)
	t4.Add(&t4, &t5) // ξ·x5² + x1²

	var z0, z1, z2, z3, z4, z5 gfP2
	z0.Sub(&t0, &x0)
	z0.Double(&z0)
	z0.Add(&z0, &t0)
	z1.Sub(&t2, &x1)
	z1.Double(&z1)
	z1.Add(&z1, &t2)
	z2.Sub(&t4, &x2)
	z2.Double(&z2)
	z2.Add(&z2, &t4)

	z3.Add(&t8, &x3)
	z3.Double(&z3)
	z3.Add(&z3, &t8)
	z4.Add(&t6, &x4)
	z4.Double(&z4)
	z4.Add(&z4, &t6)
	z5.Add(&t7, &x5)
	z5.Double(&z5)
	z5.Add(&z5, &t7)

	e.y.z = z0
	e.y.y = z1
	e.y.x = z2
	e.x.z = z3
	e.x.y = z4
	e.x.x = z5
	return e
}

// nafDigits returns the non-adjacent form of k (least significant digit
// first), digits in {−1, 0, 1}. The NAF has minimal Hamming weight among
// signed-binary recodings — about one third of the digits are non-zero —
// and in the cyclotomic subgroup a −1 digit costs only a conjugation.
// Shared by the limb and reference cores.
func nafDigits(k *big.Int) []int8 {
	n := new(big.Int).Set(k)
	digits := make([]int8, 0, n.BitLen()+1)
	four := big.NewInt(4)
	mod := new(big.Int)
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			mod.Mod(n, four)
			d := int8(2 - mod.Int64()) // 1 if n ≡ 1, −1 if n ≡ 3 (mod 4)
			digits = append(digits, d)
			if d > 0 {
				n.Sub(n, big.NewInt(1))
			} else {
				n.Add(n, big.NewInt(1))
			}
		} else {
			digits = append(digits, 0)
		}
		n.Rsh(n, 1)
	}
	return digits
}

// uNAF is the NAF recoding of the curve parameter u, computed once: the
// final exponentiation raises to the power u three times per invocation.
var uNAF = nafDigits(u)

// cyclotomicExp sets e = a^k for a in the cyclotomic subgroup and k ≥ 0,
// combining Granger–Scott squarings with NAF recoding (conjugate in place
// of inverse for the negative digits).
func (e *gfP12) cyclotomicExp(a *gfP12, k *big.Int) *gfP12 {
	if k == u {
		return e.cyclotomicExpNAF(a, uNAF)
	}
	return e.cyclotomicExpNAF(a, nafDigits(k))
}

// cyclotomicExpNAF is cyclotomicExp over a precomputed NAF digit string
// (least significant digit first).
func (e *gfP12) cyclotomicExpNAF(a *gfP12, digits []int8) *gfP12 {
	if len(digits) == 0 {
		return e.SetOne()
	}
	aInv := newGFp12().Conjugate(a)
	sum := newGFp12().Set(a) // top digit of a NAF is always 1
	for i := len(digits) - 2; i >= 0; i-- {
		sum.CyclotomicSquare(sum)
		switch digits[i] {
		case 1:
			sum.Mul(sum, a)
		case -1:
			sum.Mul(sum, aInv)
		}
	}
	return e.Set(sum)
}
