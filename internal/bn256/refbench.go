package bn256

import (
	"math/big"
	"time"
)

// This file measures the retained big.Int reference core against the
// Montgomery limb core on the primitives that dominate protocol cost. The
// reference implementation is unexported, so the comparison has to live
// inside the package; peacebench's e14 experiment reports the results.

// FieldCoreRow is one primitive timed on both arithmetic cores.
type FieldCoreRow struct {
	Name    string
	RefNs   int64
	LimbNs  int64
	Speedup float64
}

// refHashToG1 is the pre-limb-core HashToG1: identical hash schedule, but
// with big.Int modular arithmetic for the curve equation and square root.
// It produces the same point as HashToG1 (p ≡ 3 mod 4 gives both square
// roots the same principal value).
func refHashToG1(msg []byte) *refCurvePoint {
	three := big.NewInt(3)
	for ctr := uint32(0); ; ctr++ {
		d := hashWithTag("g1", ctr, msg)
		x := new(big.Int).SetBytes(d[:])
		x.Mod(x, P)

		yy := new(big.Int).Mul(x, x)
		yy.Mul(yy, x)
		yy.Add(yy, three)
		yy.Mod(yy, P)

		y := new(big.Int).ModSqrt(yy, P)
		if y == nil {
			continue
		}
		if d[31]&1 == 1 {
			y.Neg(y).Mod(y, P)
		}
		pt := newRefCurvePoint()
		pt.x.Set(x)
		pt.y.Set(y)
		pt.z.SetInt64(1)
		pt.t.SetInt64(1)
		return pt
	}
}

// FieldCoreComparison times pairing, group exponentiations and hash-to-G1
// on the big.Int reference core ("before") and the Montgomery limb core
// ("after"), averaging over iters runs of each.
func FieldCoreComparison(iters int) []FieldCoreRow {
	if iters < 1 {
		iters = 1
	}
	k := HashToScalar([]byte("fieldcore probe"))
	msg := []byte("fieldcore hash probe")
	refGT := refGfP12FromLimb(gtGen)

	timeIt := func(fn func()) int64 {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		return int64(time.Since(start)) / int64(iters)
	}

	row := func(name string, ref, limb func()) FieldCoreRow {
		r := FieldCoreRow{Name: name, RefNs: timeIt(ref), LimbNs: timeIt(limb)}
		if r.LimbNs > 0 {
			r.Speedup = float64(r.RefNs) / float64(r.LimbNs)
		}
		return r
	}

	return []FieldCoreRow{
		row("pairing e(P,Q)",
			func() { refAtePairing(refTwistGen, refCurveGen) },
			func() { atePairing(twistGen, curveGen) }),
		row("G1 exponentiation",
			func() { newRefCurvePoint().Mul(refCurveGen, k) },
			func() { newCurvePoint().Mul(curveGen, k) }),
		row("G2 exponentiation",
			func() { newRefTwistPoint().Mul(refTwistGen, k) },
			func() { newTwistPoint().Mul(twistGen, k) }),
		row("GT exponentiation",
			func() { newRefGFp12().Exp(refGT, k) },
			func() { newGFp12().cyclotomicExp(gtGen, k) }),
		row("hash-to-G1",
			func() { refHashToG1(msg) },
			func() { HashToG1(msg) }),
	}
}
