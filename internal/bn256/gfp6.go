package bn256

import "fmt"

// gfP6 implements the field of size p⁶ as a cubic extension of gfP2 where
// τ³ = ξ with ξ = i + 3. An element is x·τ² + y·τ + z. The zero value is a
// valid 0.
type gfP6 struct {
	x, y, z gfP2
}

func newGFp6() *gfP6 {
	return &gfP6{}
}

func (e *gfP6) String() string {
	return fmt.Sprintf("(%s, %s, %s)", &e.x, &e.y, &e.z)
}

func (e *gfP6) Set(a *gfP6) *gfP6 {
	*e = *a
	return e
}

func (e *gfP6) SetZero() *gfP6 {
	*e = gfP6{}
	return e
}

func (e *gfP6) SetOne() *gfP6 {
	e.x.SetZero()
	e.y.SetZero()
	e.z.SetOne()
	return e
}

// Minimal is the identity for the limb core (see gfP2.Minimal).
func (e *gfP6) Minimal() *gfP6 { return e }

func (e *gfP6) IsZero() bool {
	return e.x.IsZero() && e.y.IsZero() && e.z.IsZero()
}

func (e *gfP6) IsOne() bool {
	return e.x.IsZero() && e.y.IsZero() && e.z.IsOne()
}

func (e *gfP6) Equal(a *gfP6) bool {
	return e.x.Equal(&a.x) && e.y.Equal(&a.y) && e.z.Equal(&a.z)
}

func (e *gfP6) Neg(a *gfP6) *gfP6 {
	e.x.Neg(&a.x)
	e.y.Neg(&a.y)
	e.z.Neg(&a.z)
	return e
}

func (e *gfP6) Add(a, b *gfP6) *gfP6 {
	e.x.Add(&a.x, &b.x)
	e.y.Add(&a.y, &b.y)
	e.z.Add(&a.z, &b.z)
	return e
}

func (e *gfP6) Double(a *gfP6) *gfP6 {
	e.x.Double(&a.x)
	e.y.Double(&a.y)
	e.z.Double(&a.z)
	return e
}

func (e *gfP6) Sub(a, b *gfP6) *gfP6 {
	e.x.Sub(&a.x, &b.x)
	e.y.Sub(&a.y, &b.y)
	e.z.Sub(&a.z, &b.z)
	return e
}

// Mul sets e = a·b using the 6-multiplication Karatsuba-style schedule.
// Writing a = a0 + a1·τ + a2·τ² (so a0 = a.z, a1 = a.y, a2 = a.x):
//
//	t0 = a0·b0, t1 = a1·b1, t2 = a2·b2
//	r0 = t0 + ξ·((a1+a2)(b1+b2) − t1 − t2)
//	r1 = (a0+a1)(b0+b1) − t0 − t1 + ξ·t2
//	r2 = (a0+a2)(b0+b2) − t0 − t2 + t1
func (e *gfP6) Mul(a, b *gfP6) *gfP6 {
	var t0, t1, t2, s1, s2, r0, r1, r2, xiT2 gfP2
	t0.Mul(&a.z, &b.z)
	t1.Mul(&a.y, &b.y)
	t2.Mul(&a.x, &b.x)

	s1.Add(&a.y, &a.x)
	s2.Add(&b.y, &b.x)
	r0.Mul(&s1, &s2)
	r0.Sub(&r0, &t1)
	r0.Sub(&r0, &t2)
	r0.MulXi(&r0)
	r0.Add(&r0, &t0)

	s1.Add(&a.z, &a.y)
	s2.Add(&b.z, &b.y)
	r1.Mul(&s1, &s2)
	r1.Sub(&r1, &t0)
	r1.Sub(&r1, &t1)
	xiT2.MulXi(&t2)
	r1.Add(&r1, &xiT2)

	s1.Add(&a.z, &a.x)
	s2.Add(&b.z, &b.x)
	r2.Mul(&s1, &s2)
	r2.Sub(&r2, &t0)
	r2.Sub(&r2, &t2)
	r2.Add(&r2, &t1)

	e.z = r0
	e.y = r1
	e.x = r2
	return e
}

func (e *gfP6) MulScalar(a *gfP6, b *gfP2) *gfP6 {
	var tx, ty, tz gfP2
	tx.Mul(&a.x, b)
	ty.Mul(&a.y, b)
	tz.Mul(&a.z, b)
	e.x = tx
	e.y = ty
	e.z = tz
	return e
}

func (e *gfP6) MulGFp(a *gfP6, b *gfP) *gfP6 {
	e.x.MulScalar(&a.x, b)
	e.y.MulScalar(&a.y, b)
	e.z.MulScalar(&a.z, b)
	return e
}

// MulSparse2 sets e = a·(y2·τ + z2), a multiplication by an element with
// only two non-zero coefficients — used by the pairing's sparse line
// multiplication.
func (e *gfP6) MulSparse2(a *gfP6, y2, z2 *gfP2) *gfP6 {
	// (x1τ² + y1τ + z1)(y2τ + z2):
	//   z' = z1z2 + ξ·x1y2
	//   y' = y1z2 + z1y2
	//   x' = x1z2 + y1y2
	var tx, ty, tz, t gfP2
	tz.Mul(&a.x, y2)
	tz.MulXi(&tz)
	t.Mul(&a.z, z2)
	tz.Add(&tz, &t)

	ty.Mul(&a.y, z2)
	t.Mul(&a.z, y2)
	ty.Add(&ty, &t)

	tx.Mul(&a.x, z2)
	t.Mul(&a.y, y2)
	tx.Add(&tx, &t)

	e.x = tx
	e.y = ty
	e.z = tz
	return e
}

// MulTau sets e = a·τ: (x·τ² + y·τ + z)·τ = y·τ² + z·τ + x·ξ.
func (e *gfP6) MulTau(a *gfP6) *gfP6 {
	var tz, ty gfP2
	tz.MulXi(&a.x)
	ty = a.y
	e.y = a.z
	e.x = ty
	e.z = tz
	return e
}

func (e *gfP6) Square(a *gfP6) *gfP6 {
	return e.Mul(a, a)
}

// Invert sets e = a⁻¹. With a = a0 + a1·τ + a2·τ²:
//
//	c0 = a0² − ξ·a1·a2
//	c1 = ξ·a2² − a0·a1
//	c2 = a1² − a0·a2
//	F  = a0·c0 + ξ·(a2·c1 + a1·c2)
//	a⁻¹ = (c0 + c1·τ + c2·τ²)/F
func (e *gfP6) Invert(a *gfP6) *gfP6 {
	a0, a1, a2 := &a.z, &a.y, &a.x

	var c0, c1, c2, f, t gfP2
	c0.Square(a0)
	t.Mul(a1, a2)
	t.MulXi(&t)
	c0.Sub(&c0, &t)

	c1.Square(a2)
	c1.MulXi(&c1)
	t.Mul(a0, a1)
	c1.Sub(&c1, &t)

	c2.Square(a1)
	t.Mul(a0, a2)
	c2.Sub(&c2, &t)

	f.Mul(a2, &c1)
	t.Mul(a1, &c2)
	f.Add(&f, &t)
	f.MulXi(&f)
	t.Mul(a0, &c0)
	f.Add(&f, &t)
	f.Invert(&f)

	e.z.Mul(&c0, &f)
	e.y.Mul(&c1, &f)
	e.x.Mul(&c2, &f)
	return e
}

// Frobenius sets e = a^p. With τ^p = ξ^((p−1)/3)·τ:
//
//	(x·τ² + y·τ + z)^p = x̄·ξ^(2(p−1)/3)·τ² + ȳ·ξ^((p−1)/3)·τ + z̄.
func (e *gfP6) Frobenius(a *gfP6) *gfP6 {
	e.x.Conjugate(&a.x)
	e.y.Conjugate(&a.y)
	e.z.Conjugate(&a.z)

	e.x.Mul(&e.x, xiToPMinus1Over3)
	e.x.Mul(&e.x, xiToPMinus1Over3)
	e.y.Mul(&e.y, xiToPMinus1Over3)
	return e
}

// FrobeniusP2 sets e = a^(p²). Conjugation in F_p² squares away, and
// τ^(p²) = ξ^((p²−1)/3)·τ where ξ^((p²−1)/3) lies in F_p.
func (e *gfP6) FrobeniusP2(a *gfP6) *gfP6 {
	e.x.Mul(&a.x, xiToPSquaredMinus1Over3)
	e.x.Mul(&e.x, xiToPSquaredMinus1Over3)
	e.y.Mul(&a.y, xiToPSquaredMinus1Over3)
	e.z.Set(&a.z)
	return e
}
