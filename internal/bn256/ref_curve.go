package bn256

import (
	"fmt"
	"math/big"
)

// refCurvePoint implements the elliptic curve E: y² = x³ + 3 over F_p in
// Jacobian projective coordinates: (x, y, z) represents the affine point
// (x/z², y/z³). The point at infinity has z = 0. The t field caches z²
// during mixed operations (kept for parity with classic implementations;
// it always mirrors z² when set via MakeAffine).
type refCurvePoint struct {
	x, y, z, t *big.Int
}

func newRefCurvePoint() *refCurvePoint {
	return &refCurvePoint{
		x: new(big.Int),
		y: new(big.Int),
		z: new(big.Int),
		t: new(big.Int),
	}
}

func (c *refCurvePoint) String() string {
	c.MakeAffine()
	return fmt.Sprintf("(%s, %s)", c.x.String(), c.y.String())
}

func (c *refCurvePoint) Set(a *refCurvePoint) *refCurvePoint {
	c.x.Set(a.x)
	c.y.Set(a.y)
	c.z.Set(a.z)
	c.t.Set(a.t)
	return c
}

// SetInfinity sets c to the point at infinity.
func (c *refCurvePoint) SetInfinity() *refCurvePoint {
	c.x.SetInt64(1)
	c.y.SetInt64(1)
	c.z.SetInt64(0)
	c.t.SetInt64(0)
	return c
}

func (c *refCurvePoint) IsInfinity() bool {
	return c.z.Sign() == 0
}

// IsOnCurve reports whether the affine form of c satisfies y² = x³ + 3.
// The point at infinity is considered on the curve.
func (c *refCurvePoint) IsOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	c.MakeAffine()
	yy := new(big.Int).Mul(c.y, c.y)
	xxx := new(big.Int).Mul(c.x, c.x)
	xxx.Mul(xxx, c.x)
	yy.Sub(yy, xxx)
	yy.Sub(yy, curveB)
	yy.Mod(yy, P)
	return yy.Sign() == 0
}

func (c *refCurvePoint) Equal(a *refCurvePoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	// Compare cross-multiplied coordinates to avoid affine conversion:
	// x1·z2² == x2·z1² and y1·z2³ == y2·z1³.
	z1z1 := new(big.Int).Mul(c.z, c.z)
	z1z1.Mod(z1z1, P)
	z2z2 := new(big.Int).Mul(a.z, a.z)
	z2z2.Mod(z2z2, P)

	l := new(big.Int).Mul(c.x, z2z2)
	l.Mod(l, P)
	r := new(big.Int).Mul(a.x, z1z1)
	r.Mod(r, P)
	if l.Cmp(r) != 0 {
		return false
	}

	z1z1.Mul(z1z1, c.z)
	z1z1.Mod(z1z1, P)
	z2z2.Mul(z2z2, a.z)
	z2z2.Mod(z2z2, P)

	l.Mul(c.y, z2z2)
	l.Mod(l, P)
	r.Mul(a.y, z1z1)
	r.Mod(r, P)
	return l.Cmp(r) == 0
}

// Add sets c = a + b using the add-2007-bl Jacobian formulas, falling back
// to Double when a == b.
func (c *refCurvePoint) Add(a, b *refCurvePoint) *refCurvePoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}

	z1z1 := new(big.Int).Mul(a.z, a.z)
	z1z1.Mod(z1z1, P)
	z2z2 := new(big.Int).Mul(b.z, b.z)
	z2z2.Mod(z2z2, P)

	u1 := new(big.Int).Mul(a.x, z2z2)
	u1.Mod(u1, P)
	u2 := new(big.Int).Mul(b.x, z1z1)
	u2.Mod(u2, P)

	s1 := new(big.Int).Mul(a.y, b.z)
	s1.Mul(s1, z2z2)
	s1.Mod(s1, P)
	s2 := new(big.Int).Mul(b.y, a.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, P)

	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, P)
	r := new(big.Int).Sub(s2, s1)
	r.Mod(r, P)

	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	r.Lsh(r, 1)

	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	i.Mod(i, P)
	j := new(big.Int).Mul(h, i)
	j.Mod(j, P)

	v := new(big.Int).Mul(u1, i)
	v.Mod(v, P)

	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, j)
	x3.Sub(x3, v)
	x3.Sub(x3, v)
	x3.Mod(x3, P)

	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	t := new(big.Int).Mul(s1, j)
	t.Lsh(t, 1)
	y3.Sub(y3, t)
	y3.Mod(y3, P)

	z3 := new(big.Int).Add(a.z, b.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	z3.Mod(z3, P)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Double sets c = 2a using the dbl-2009-l Jacobian formulas.
func (c *refCurvePoint) Double(a *refCurvePoint) *refCurvePoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}

	aa := new(big.Int).Mul(a.x, a.x)
	aa.Mod(aa, P)
	bb := new(big.Int).Mul(a.y, a.y)
	bb.Mod(bb, P)
	cc := new(big.Int).Mul(bb, bb)
	cc.Mod(cc, P)

	d := new(big.Int).Add(a.x, bb)
	d.Mul(d, d)
	d.Sub(d, aa)
	d.Sub(d, cc)
	d.Lsh(d, 1)
	d.Mod(d, P)

	e := new(big.Int).Lsh(aa, 1)
	e.Add(e, aa)
	f := new(big.Int).Mul(e, e)
	f.Mod(f, P)

	x3 := new(big.Int).Sub(f, new(big.Int).Lsh(d, 1))
	x3.Mod(x3, P)

	y3 := new(big.Int).Sub(d, x3)
	y3.Mul(y3, e)
	t := new(big.Int).Lsh(cc, 3)
	y3.Sub(y3, t)
	y3.Mod(y3, P)

	z3 := new(big.Int).Mul(a.y, a.z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, P)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Mul sets c = k·a. Long scalars (beyond half the order's bit length) go
// through the GLV endomorphism split in mulGLV — E(F_p) has prime order,
// so the decomposition is valid for every point and every k. Short scalars
// use width-5 wNAF (odd-multiple table of 8 points, one addition per ~6
// bits). mulGeneric remains as the cross-check reference for tests.
func (c *refCurvePoint) Mul(a *refCurvePoint, k *big.Int) *refCurvePoint {
	if k.Sign() < 0 {
		neg := newRefCurvePoint().Negative(a)
		kAbs := new(big.Int).Neg(k)
		return c.Mul(neg, kAbs)
	}
	if k.BitLen() <= 16 {
		return c.mulGeneric(a, k)
	}

	// odd[i] = (2i+1)·a for i in 0..7.
	var odd [8]*refCurvePoint
	odd[0] = newRefCurvePoint().Set(a)
	twoA := newRefCurvePoint().Double(a)
	for i := 1; i < 8; i++ {
		odd[i] = newRefCurvePoint().Add(odd[i-1], twoA)
	}
	neg := newRefCurvePoint()

	digits := wnafDigits(k, 5)
	sum := newRefCurvePoint().SetInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		sum.Double(sum)
		switch d := digits[i]; {
		case d > 0:
			sum.Add(sum, odd[(d-1)/2])
		case d < 0:
			sum.Add(sum, neg.Negative(odd[(-d-1)/2]))
		}
	}
	return c.Set(sum)
}

// mulGeneric is the textbook double-and-add ladder.
func (c *refCurvePoint) mulGeneric(a *refCurvePoint, k *big.Int) *refCurvePoint {
	sum := newRefCurvePoint().SetInfinity()
	t := newRefCurvePoint()
	for i := k.BitLen(); i >= 0; i-- {
		t.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(t, a)
		} else {
			sum.Set(t)
		}
	}
	return c.Set(sum)
}

func (c *refCurvePoint) Negative(a *refCurvePoint) *refCurvePoint {
	c.x.Set(a.x)
	c.y.Neg(a.y)
	c.y.Mod(c.y, P)
	c.z.Set(a.z)
	c.t.SetInt64(0)
	return c
}

// MakeAffine normalizes c to z = 1 (or the canonical infinity encoding).
func (c *refCurvePoint) MakeAffine() *refCurvePoint {
	if c.z.Sign() == 0 {
		return c.SetInfinity()
	}
	one := big.NewInt(1)
	if c.z.Cmp(one) == 0 && c.x.Sign() >= 0 && c.x.Cmp(P) < 0 &&
		c.y.Sign() >= 0 && c.y.Cmp(P) < 0 {
		c.t.Set(one)
		return c
	}

	zInv := new(big.Int).ModInverse(c.z, P)
	t := new(big.Int).Mul(c.y, zInv)
	t.Mod(t, P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, P)

	c.y.Mul(t, zInv2)
	c.y.Mod(c.y, P)
	t.Mul(c.x, zInv2)
	t.Mod(t, P)
	c.x.Set(t)
	c.z.SetInt64(1)
	c.t.SetInt64(1)
	return c
}
