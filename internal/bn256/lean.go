package bn256

import "math/big"

// This file contains the allocation-free inner loop shared by the prepared
// Miller evaluations (PreparedG2.Miller, MillerCombined). The generic
// tower-field methods allocate every temporary afresh and reduce every
// intermediate with a full division; over the ~128 iterations of the ate
// loop that dominates the runtime of a pairing. Here every temporary lives
// in a millerScratch that is allocated once per evaluation and reused each
// step (big.Int reuses its word storage once grown, so the steady state
// performs no heap allocation), and additive intermediates are reduced by
// conditional subtraction instead of division. Only the unavoidable
// product reductions still divide.
//
// The reference loop (miller, used by Miller/Pair) is deliberately left on
// the generic methods: it is the cross-checked baseline the tests compare
// against, and the optimized verifiers only ever evaluate through the
// prepared paths.

// millerScratch owns every temporary of the lean loop. One instance serves
// one evaluation at a time; concurrent evaluations use separate instances
// (per-worker scratch, no locking).
type millerScratch struct {
	bi [3]*big.Int // gfP2 Karatsuba temps
	p2 [8]*gfP2    // gfP6-level temps
	z2 *gfP2       // shifted line coefficient (outlives sparse-mul temps)
	c1 *gfP2       // per-step −λ'·x_P coefficient
	g  [5]*gfP6    // gfP12-level temps
	fA *gfP12      // squaring ping-pong buffer
}

func newMillerScratch() *millerScratch {
	s := &millerScratch{z2: newGFp2(), c1: newGFp2(), fA: newGFp12()}
	for i := range s.bi {
		s.bi[i] = new(big.Int)
	}
	for i := range s.p2 {
		s.p2[i] = newGFp2()
	}
	for i := range s.g {
		s.g[i] = newGFp6()
	}
	return s
}

// redOnce reduces z ∈ [0, 2P) by one conditional subtraction.
func redOnce(z *big.Int) {
	if z.Cmp(P) >= 0 {
		z.Sub(z, P)
	}
}

// redSmall reduces z ∈ (−P, 4P) — the range of the ξ-multiplication — by
// conditional add/subtract.
func redSmall(z *big.Int) {
	if z.Sign() < 0 {
		z.Add(z, P)
		return
	}
	for z.Cmp(P) >= 0 {
		z.Sub(z, P)
	}
}

// leanAdd2 sets z = a + b with both inputs reduced. Aliasing is allowed.
func leanAdd2(z, a, b *gfP2) {
	z.x.Add(a.x, b.x)
	redOnce(z.x)
	z.y.Add(a.y, b.y)
	redOnce(z.y)
}

// leanSub2 sets z = a − b with both inputs reduced. Aliasing is allowed.
func leanSub2(z, a, b *gfP2) {
	z.x.Sub(a.x, b.x)
	if z.x.Sign() < 0 {
		z.x.Add(z.x, P)
	}
	z.y.Sub(a.y, b.y)
	if z.y.Sign() < 0 {
		z.y.Add(z.y, P)
	}
}

// leanMulXi2 sets z = a·ξ where ξ = i + 3. Aliasing is allowed.
func leanMulXi2(z, a *gfP2, s *millerScratch) {
	tx := s.bi[0]
	tx.Lsh(a.x, 1)
	tx.Add(tx, a.x)
	tx.Add(tx, a.y) // 3x + y ∈ [0, 4P)
	ty := s.bi[1]
	ty.Lsh(a.y, 1)
	ty.Add(ty, a.y)
	ty.Sub(ty, a.x) // 3y − x ∈ (−P, 3P)
	redSmall(tx)
	redSmall(ty)
	z.x.Set(tx)
	z.y.Set(ty)
}

// leanMul2 sets z = a·b (Karatsuba, one division per output coordinate).
// z must not alias a or b; the inputs must be reduced.
func leanMul2(z, a, b *gfP2, s *millerScratch) {
	tx, t, v := s.bi[0], s.bi[1], s.bi[2]
	tx.Add(a.x, a.y)
	t.Add(b.x, b.y)
	tx.Mul(tx, t) // (ax+ay)(bx+by)

	v.Mul(a.x, b.x) // ax·bx
	tx.Sub(tx, v)
	t.Mul(a.y, b.y) // ay·by
	tx.Sub(tx, t)
	z.x.Mod(tx, P)

	t.Sub(t, v)
	z.y.Mod(t, P)
}

// leanMulScalar2 sets z = a·b for a base-field scalar b. z may alias a.
func leanMulScalar2(z, a *gfP2, b *big.Int, s *millerScratch) {
	t := s.bi[0]
	t.Mul(a.x, b)
	z.x.Mod(t, P)
	t.Mul(a.y, b)
	z.y.Mod(t, P)
}

// leanAdd6 sets z = a + b coordinate-wise. Aliasing is allowed.
func leanAdd6(z, a, b *gfP6) {
	leanAdd2(z.x, a.x, b.x)
	leanAdd2(z.y, a.y, b.y)
	leanAdd2(z.z, a.z, b.z)
}

// leanSub6 sets z = a − b coordinate-wise. Aliasing is allowed.
func leanSub6(z, a, b *gfP6) {
	leanSub2(z.x, a.x, b.x)
	leanSub2(z.y, a.y, b.y)
	leanSub2(z.z, a.z, b.z)
}

// leanMulTau6 sets z = a·τ. z must not alias a.
func leanMulTau6(z, a *gfP6, s *millerScratch) {
	leanMulXi2(z.z, a.x, s)
	z.x.Set(a.y)
	z.y.Set(a.z)
}

// leanMul6 mirrors gfP6.Mul with scratch temporaries. z must not alias a
// or b.
func leanMul6(z, a, b *gfP6, s *millerScratch) {
	t0, t1, t2 := s.p2[0], s.p2[1], s.p2[2]
	s1, s2 := s.p2[3], s.p2[4]
	r0, r1, r2 := s.p2[5], s.p2[6], s.p2[7]

	leanMul2(t0, a.z, b.z, s)
	leanMul2(t1, a.y, b.y, s)
	leanMul2(t2, a.x, b.x, s)

	leanAdd2(s1, a.y, a.x)
	leanAdd2(s2, b.y, b.x)
	leanMul2(r0, s1, s2, s)
	leanSub2(r0, r0, t1)
	leanSub2(r0, r0, t2)
	leanMulXi2(r0, r0, s)
	leanAdd2(r0, r0, t0)

	leanAdd2(s1, a.z, a.y)
	leanAdd2(s2, b.z, b.y)
	leanMul2(r1, s1, s2, s)
	leanSub2(r1, r1, t0)
	leanSub2(r1, r1, t1)
	leanMulXi2(s1, t2, s) // s1 reused as ξ·t2
	leanAdd2(r1, r1, s1)

	leanAdd2(s1, a.z, a.x)
	leanAdd2(s2, b.z, b.x)
	leanMul2(r2, s1, s2, s)
	leanSub2(r2, r2, t0)
	leanSub2(r2, r2, t2)
	leanAdd2(r2, r2, t1)

	z.z.Set(r0)
	z.y.Set(r1)
	z.x.Set(r2)
}

// leanMulSparse2 mirrors gfP6.MulSparse2: z = a·(y2·τ + z2). z must not
// alias a; y2/z2 must not be scratch temporaries of s.
func leanMulSparse2(z, a *gfP6, y2, z2 *gfP2, s *millerScratch) {
	tz, ty, tx, t := s.p2[0], s.p2[1], s.p2[2], s.p2[3]

	leanMul2(tz, a.x, y2, s)
	leanMulXi2(tz, tz, s)
	leanMul2(t, a.z, z2, s)
	leanAdd2(tz, tz, t)

	leanMul2(ty, a.y, z2, s)
	leanMul2(t, a.z, y2, s)
	leanAdd2(ty, ty, t)

	leanMul2(tx, a.x, z2, s)
	leanMul2(t, a.y, y2, s)
	leanAdd2(tx, tx, t)

	z.x.Set(tx)
	z.y.Set(ty)
	z.z.Set(tz)
}

// leanSquare12 sets dst = a² (generic field squaring — the Miller
// accumulator is not cyclotomic before the final exponentiation). dst must
// not alias a.
func leanSquare12(dst, a *gfP12, s *millerScratch) {
	v0, t, sum, ty, tau := s.g[0], s.g[1], s.g[2], s.g[3], s.g[4]

	leanMul6(v0, a.x, a.y, s)

	leanMulTau6(t, a.x, s)
	leanAdd6(t, t, a.y) // x·τ + y
	leanAdd6(sum, a.x, a.y)
	leanMul6(ty, sum, t, s)
	leanSub6(ty, ty, v0)
	leanMulTau6(tau, v0, s)
	leanSub6(ty, ty, tau)

	dst.y.Set(ty)
	leanAdd6(dst.x, v0, v0)
}

// leanNeg2 negates z in place for reduced z.
func leanNeg2(z *gfP2) {
	if z.x.Sign() != 0 {
		z.x.Sub(P, z.x)
	}
	if z.y.Sign() != 0 {
		z.y.Sub(P, z.y)
	}
}

// leanLine folds one prepared line step into f: the two G1-dependent
// coefficients are y_P (constant slot) and −λ'·x_P.
func leanLine(f *gfP12, st preparedLine, x, y *big.Int, s *millerScratch) {
	leanMulScalar2(s.c1, st.lam, x, s)
	leanNeg2(s.c1)
	leanMulLine12(f, y, s.c1, st.c3, s)
}

// leanMulLine12 multiplies f in place by the sparse line element
// c0 + c1·ω + c3·τω, mirroring gfP12.MulLine.
func leanMulLine12(f *gfP12, c0 *big.Int, c1, c3 *gfP2, s *millerScratch) {
	v0, v1, t6, cross, tau := s.g[0], s.g[1], s.g[2], s.g[3], s.g[4]

	// v0 = f.y · c0 (scalar), v1 = f.x · (c3·τ + c1).
	leanMulScalar2(v0.x, f.y.x, c0, s)
	leanMulScalar2(v0.y, f.y.y, c0, s)
	leanMulScalar2(v0.z, f.y.z, c0, s)
	leanMulSparse2(v1, f.x, c3, c1, s)

	// z2 = c1 + c0 (constant slot shifted), cross = (f.x + f.y)(c3·τ + z2).
	s.z2.x.Set(c1.x)
	s.z2.y.Add(c1.y, c0)
	redOnce(s.z2.y)
	leanAdd6(t6, f.x, f.y)
	leanMulSparse2(cross, t6, c3, s.z2, s)
	leanSub6(cross, cross, v0)
	leanSub6(cross, cross, v1)

	f.x.Set(cross)
	leanMulTau6(tau, v1, s)
	leanAdd6(f.y, v0, tau)
}
