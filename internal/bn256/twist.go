package bn256

import (
	"crypto/sha256"
	"fmt"
	"math/big"
)

// twistPoint implements the sextic twist E': y² = x³ + 3/ξ over F_p² in
// Jacobian projective coordinates. The prime-order subgroup of E'(F_p²)
// is (isomorphic to) G2.
type twistPoint struct {
	x, y, z, t gfP2
}

func newTwistPoint() *twistPoint {
	return &twistPoint{}
}

func (c *twistPoint) String() string {
	c.MakeAffine()
	return fmt.Sprintf("(%s, %s)", &c.x, &c.y)
}

func (c *twistPoint) Set(a *twistPoint) *twistPoint {
	*c = *a
	return c
}

func (c *twistPoint) SetInfinity() *twistPoint {
	c.x.SetOne()
	c.y.SetOne()
	c.z.SetZero()
	c.t.SetZero()
	return c
}

func (c *twistPoint) IsInfinity() bool {
	return c.z.IsZero()
}

// IsOnCurve reports whether the affine form of c satisfies y² = x³ + 3/ξ
// and whether c lies in the order-n subgroup (i.e. is a valid G2 element).
func (c *twistPoint) IsOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	c.MakeAffine()
	var yy, xxx gfP2
	yy.Square(&c.y)
	xxx.Square(&c.x)
	xxx.Mul(&xxx, &c.x)
	yy.Sub(&yy, &xxx)
	yy.Sub(&yy, twistB)
	if !yy.IsZero() {
		return false
	}
	cneg := newTwistPoint().Mul(c, Order)
	return cneg.IsInfinity()
}

func (c *twistPoint) Equal(a *twistPoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	var z1z1, z2z2, l, r gfP2
	z1z1.Square(&c.z)
	z2z2.Square(&a.z)

	l.Mul(&c.x, &z2z2)
	r.Mul(&a.x, &z1z1)
	if !l.Equal(&r) {
		return false
	}

	z1z1.Mul(&z1z1, &c.z)
	z2z2.Mul(&z2z2, &a.z)
	l.Mul(&c.y, &z2z2)
	r.Mul(&a.y, &z1z1)
	return l.Equal(&r)
}

// Add sets c = a + b (add-2007-bl, falling back to Double).
func (c *twistPoint) Add(a, b *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}

	var z1z1, z2z2, u1, u2, s1, s2, h, r gfP2
	z1z1.Square(&a.z)
	z2z2.Square(&b.z)
	u1.Mul(&a.x, &z2z2)
	u2.Mul(&b.x, &z1z1)

	s1.Mul(&a.y, &b.z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&b.y, &a.z)
	s2.Mul(&s2, &z1z1)

	h.Sub(&u2, &u1)
	r.Sub(&s2, &s1)

	if h.IsZero() {
		if r.IsZero() {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	r.Double(&r)

	var i, j, v, x3, y3, z3, t gfP2
	i.Double(&h)
	i.Square(&i)
	j.Mul(&h, &i)
	v.Mul(&u1, &i)

	x3.Square(&r)
	x3.Sub(&x3, &j)
	x3.Sub(&x3, &v)
	x3.Sub(&x3, &v)

	y3.Sub(&v, &x3)
	y3.Mul(&y3, &r)
	t.Mul(&s1, &j)
	t.Double(&t)
	y3.Sub(&y3, &t)

	z3.Add(&a.z, &b.z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	c.x = x3
	c.y = y3
	c.z = z3
	return c
}

// Double sets c = 2a (dbl-2009-l).
func (c *twistPoint) Double(a *twistPoint) *twistPoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}

	var aa, bb, cc, d, e, f, x3, y3, z3, t gfP2
	aa.Square(&a.x)
	bb.Square(&a.y)
	cc.Square(&bb)

	d.Add(&a.x, &bb)
	d.Square(&d)
	d.Sub(&d, &aa)
	d.Sub(&d, &cc)
	d.Double(&d)

	e.Double(&aa)
	e.Add(&e, &aa)
	f.Square(&e)

	x3.Double(&d)
	x3.Sub(&f, &x3)

	y3.Sub(&d, &x3)
	y3.Mul(&y3, &e)
	t.Double(&cc)
	t.Double(&t)
	t.Double(&t)
	y3.Sub(&y3, &t)

	z3.Mul(&a.y, &a.z)
	z3.Double(&z3)

	c.x = x3
	c.y = y3
	c.z = z3
	return c
}

// Mul sets c = k·a using width-5 wNAF; mulGeneric remains as the
// cross-check reference for tests. k is deliberately not reduced mod
// Order: cofactor clearing (mapToTwistSubgroup) multiplies points outside
// the order-n subgroup.
func (c *twistPoint) Mul(a *twistPoint, k *big.Int) *twistPoint {
	if k.Sign() < 0 {
		neg := newTwistPoint().Negative(a)
		kAbs := new(big.Int).Neg(k)
		return c.Mul(neg, kAbs)
	}
	if k.BitLen() <= 16 {
		return c.mulGeneric(a, k)
	}

	// odd[i] = (2i+1)·a for i in 0..7.
	var odd [8]*twistPoint
	odd[0] = newTwistPoint().Set(a)
	twoA := newTwistPoint().Double(a)
	for i := 1; i < 8; i++ {
		odd[i] = newTwistPoint().Add(odd[i-1], twoA)
	}
	neg := newTwistPoint()

	digits := wnafDigits(k, 5)
	sum := newTwistPoint().SetInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		sum.Double(sum)
		switch d := digits[i]; {
		case d > 0:
			sum.Add(sum, odd[(d-1)/2])
		case d < 0:
			sum.Add(sum, neg.Negative(odd[(-d-1)/2]))
		}
	}
	return c.Set(sum)
}

// mulGeneric is the textbook double-and-add ladder.
func (c *twistPoint) mulGeneric(a *twistPoint, k *big.Int) *twistPoint {
	sum := newTwistPoint().SetInfinity()
	t := newTwistPoint()
	for i := k.BitLen(); i >= 0; i-- {
		t.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(t, a)
		} else {
			sum.Set(t)
		}
	}
	return c.Set(sum)
}

func (c *twistPoint) Negative(a *twistPoint) *twistPoint {
	c.x.Set(&a.x)
	c.y.Neg(&a.y)
	c.z.Set(&a.z)
	c.t.SetZero()
	return c
}

// MakeAffine normalizes c to z = 1 (or the canonical infinity encoding).
func (c *twistPoint) MakeAffine() *twistPoint {
	if c.z.IsZero() {
		return c.SetInfinity()
	}
	if c.z.IsOne() {
		c.t.SetOne()
		return c
	}

	var zInv, zInv2, t gfP2
	zInv.Invert(&c.z)
	t.Mul(&c.y, &zInv)
	zInv2.Square(&zInv)
	c.y.Mul(&t, &zInv2)
	t.Mul(&c.x, &zInv2)
	c.x = t
	c.z.SetOne()
	c.t.SetOne()
	return c
}

// twistCofactor is #E'(F_p²)/n = 2p − n.
func twistCofactor() *big.Int {
	c := new(big.Int).Lsh(P, 1)
	return c.Sub(c, Order)
}

// mapToTwistSubgroup deterministically derives a point in the order-n
// subgroup of the twist from a seed counter, returning nil if the candidate
// x-coordinate is not on the curve or clears to infinity.
func mapToTwistSubgroup(xCand *gfP2) *twistPoint {
	yy := newGFp2().Square(xCand)
	yy.Mul(yy, xCand)
	yy.Add(yy, twistB)

	y := newGFp2()
	if !y.Sqrt(yy) {
		return nil
	}

	pt := newTwistPoint()
	pt.x.Set(xCand)
	pt.y.Set(y)
	pt.z.SetOne()
	pt.t.SetOne()

	pt.Mul(pt, twistCofactor())
	if pt.IsInfinity() {
		return nil
	}
	// Sanity: result must have order n.
	check := newTwistPoint().Mul(pt, Order)
	if !check.IsInfinity() {
		return nil
	}
	return pt
}

// makeTwistGen derives the canonical G2 generator deterministically: hash a
// domain-separation label to successive x-candidates and clear the cofactor.
func makeTwistGen() *twistPoint {
	for ctr := uint32(0); ; ctr++ {
		hx := sha256.Sum256([]byte(fmt.Sprintf("peace/bn256:twist-generator:x:%d", ctr)))
		hy := sha256.Sum256([]byte(fmt.Sprintf("peace/bn256:twist-generator:y:%d", ctr)))
		xCand := newGFp2()
		xCand.x = gfPFromBig(new(big.Int).SetBytes(hx[:]))
		xCand.y = gfPFromBig(new(big.Int).SetBytes(hy[:]))
		if pt := mapToTwistSubgroup(xCand); pt != nil {
			return pt.MakeAffine()
		}
	}
}
