package bn256

import (
	"math/big"
	"sync"
)

// GLV scalar decomposition for G1 (Gallant–Lambert–Vanstone). BN curves
// have j-invariant 0, so E(F_p) carries the efficient endomorphism
// φ(x, y) = (β·x, y) with β a primitive cube root of unity in F_p. E(F_p)
// is cyclic of prime order n, so φ acts as multiplication by a fixed scalar
// λ with λ² + λ + 1 ≡ 0 (mod n). Splitting k ≡ k₁ + k₂·λ (mod n) with
// |k₁|, |k₂| ≈ √n turns one 256-bit scalar multiplication into two
// half-length ones sharing a single doubling chain — the doubling chain is
// the dominant cost, so variable-base multiplication runs in roughly half
// the time.
type glvConstants struct {
	beta    *big.Int // cube root of unity in F_p matching λ on the curve
	betaGfP gfP      // beta in Montgomery limb form, for the endomorphism map
	lambda  *big.Int // eigenvalue of φ modulo the group order

	// Short lattice basis for {(a, b) : a + b·λ ≡ 0 (mod n)}, from the
	// extended Euclidean algorithm on (n, λ).
	a1, b1, a2, b2 *big.Int
}

var (
	glvOnce sync.Once
	glvC    *glvConstants
)

func glv() *glvConstants {
	glvOnce.Do(func() { glvC = computeGLVConstants() })
	return glvC
}

func computeGLVConstants() *glvConstants {
	half := func(m *big.Int) *big.Int {
		// (−1 + √−3)/2 mod m: a primitive cube root of unity.
		s := new(big.Int).ModSqrt(new(big.Int).Mod(big.NewInt(-3), m), m)
		if s == nil {
			panic("bn256: −3 is not a square — not a BN field")
		}
		r := new(big.Int).Sub(s, big.NewInt(1))
		r.Mul(r, new(big.Int).ModInverse(big.NewInt(2), m))
		return r.Mod(r, m)
	}

	lambda := half(Order)
	// φ's eigenvalue is one of the two primitive cube roots of unity mod n;
	// fix the choice by testing against the generator. The matching β is
	// then determined the same way mod p.
	beta := half(P)
	betaGfP := gfPFromBig(beta)
	phi := newCurvePoint().Set(curveGen)
	phi.MakeAffine()
	gfpMul(&phi.x, &phi.x, &betaGfP)
	want := newCurvePoint().mulGeneric(curveGen, lambda)
	if !phi.Equal(want) {
		lambda.Sub(Order, lambda)
		lambda.Sub(lambda, big.NewInt(1)) // the other root is λ² = −λ−1
		if !phi.Equal(newCurvePoint().mulGeneric(curveGen, lambda)) {
			panic("bn256: GLV eigenvalue does not match the endomorphism")
		}
	}

	// Extended Euclid on (n, λ): every row satisfies r ≡ t·λ (mod n), so
	// (r, −t) lies in the lattice. Stop at the first remainder below √n
	// and keep the surrounding rows as basis candidates (GLV §4).
	sqrtN := new(big.Int).Sqrt(Order)
	r0, r1 := new(big.Int).Set(Order), new(big.Int).Set(lambda)
	t0, t1 := big.NewInt(0), big.NewInt(1)
	for r1.Cmp(sqrtN) >= 0 {
		q := new(big.Int).Div(r0, r1)
		r0, r1 = r1, new(big.Int).Sub(r0, new(big.Int).Mul(q, r1))
		t0, t1 = t1, new(big.Int).Sub(t0, new(big.Int).Mul(q, t1))
	}
	a1, b1 := new(big.Int).Set(r1), new(big.Int).Neg(t1)
	// Second basis vector: the previous row, or the next one if shorter.
	q := new(big.Int).Div(r0, r1)
	r2 := new(big.Int).Sub(r0, new(big.Int).Mul(q, r1))
	t2 := new(big.Int).Sub(t0, new(big.Int).Mul(q, t1))
	normSq := func(a, b *big.Int) *big.Int {
		n2 := new(big.Int).Mul(a, a)
		return n2.Add(n2, new(big.Int).Mul(b, b))
	}
	a2, b2 := new(big.Int).Set(r0), new(big.Int).Neg(t0)
	if normSq(r2, t2).Cmp(normSq(a2, b2)) < 0 {
		a2, b2 = r2, new(big.Int).Neg(t2)
	}

	return &glvConstants{beta: beta, betaGfP: betaGfP, lambda: lambda, a1: a1, b1: b1, a2: a2, b2: b2}
}

// roundedDiv returns the nearest integer to x/n for n > 0 (ties away from
// zero).
func roundedDiv(x, n *big.Int) *big.Int {
	q, r := new(big.Int).QuoRem(x, n, new(big.Int))
	r.Lsh(r, 1)
	switch {
	case r.CmpAbs(n) >= 0 && r.Sign() > 0:
		q.Add(q, big.NewInt(1))
	case r.CmpAbs(n) >= 0 && r.Sign() < 0:
		q.Sub(q, big.NewInt(1))
	}
	return q
}

// glvDecompose splits 0 ≤ k < n into (k1, k2) with k ≡ k1 + k2·λ (mod n)
// and |k1|, |k2| = O(√n), by Babai rounding against the short basis.
func glvDecompose(k *big.Int) (*big.Int, *big.Int) {
	g := glv()
	c1 := roundedDiv(new(big.Int).Mul(g.b2, k), Order)
	c2 := roundedDiv(new(big.Int).Neg(new(big.Int).Mul(g.b1, k)), Order)

	k1 := new(big.Int).Set(k)
	k1.Sub(k1, new(big.Int).Mul(c1, g.a1))
	k1.Sub(k1, new(big.Int).Mul(c2, g.a2))
	k2 := new(big.Int).Neg(new(big.Int).Mul(c1, g.b1))
	k2.Sub(k2, new(big.Int).Mul(c2, g.b2))
	return k1, k2
}

// mulGLV computes c = k·a via the endomorphism split: two half-length
// width-4 wNAF ladders sharing one doubling chain. Valid for any point of
// E(F_p) (the curve group has prime order, so φ acts as ·λ everywhere) and
// any k ≥ 0: the decomposition is taken modulo the group order, which every
// point's order divides.
func (c *curvePoint) mulGLV(a *curvePoint, k *big.Int) *curvePoint {
	g := glv()
	k1, k2 := glvDecompose(new(big.Int).Mod(k, Order))

	p1 := newCurvePoint().Set(a)
	if k1.Sign() < 0 {
		p1.Negative(p1)
		k1.Neg(k1)
	}
	p2 := newCurvePoint().Set(a)
	gfpMul(&p2.x, &p2.x, &g.betaGfP)
	if k2.Sign() < 0 {
		p2.Negative(p2)
		k2.Neg(k2)
	}

	// odd multiples 1P, 3P, 5P, 7P of both halves.
	var odd1, odd2 [4]*curvePoint
	buildOdd := func(tbl *[4]*curvePoint, p *curvePoint) {
		tbl[0] = newCurvePoint().Set(p)
		twoP := newCurvePoint().Double(p)
		for i := 1; i < 4; i++ {
			tbl[i] = newCurvePoint().Add(tbl[i-1], twoP)
		}
	}
	buildOdd(&odd1, p1)
	buildOdd(&odd2, p2)

	d1 := wnafDigits(k1, 4)
	d2 := wnafDigits(k2, 4)
	n := len(d1)
	if len(d2) > n {
		n = len(d2)
	}

	sum := newCurvePoint().SetInfinity()
	neg := newCurvePoint()
	addDigit := func(tbl *[4]*curvePoint, d int8) {
		switch {
		case d > 0:
			sum.Add(sum, tbl[(d-1)/2])
		case d < 0:
			sum.Add(sum, neg.Negative(tbl[(-d-1)/2]))
		}
	}
	for i := n - 1; i >= 0; i-- {
		sum.Double(sum)
		if i < len(d1) {
			addDigit(&odd1, d1[i])
		}
		if i < len(d2) {
			addDigit(&odd2, d2[i])
		}
	}
	return c.Set(sum)
}
