package bn256

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

// The diff tests pin the Montgomery limb core to the retained big.Int
// reference implementation (ref_*.go): every operation is executed on both
// cores with the same inputs and the results must match exactly.

// randBigMod returns a uniform element of [0, m).
func randBigMod(t *testing.T, m *big.Int) *big.Int {
	t.Helper()
	v, err := rand.Int(rand.Reader, m)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestDiffGfPArithmetic(t *testing.T) {
	for i := 0; i < 50; i++ {
		a := randBigMod(t, P)
		b := randBigMod(t, P)
		ga := gfPFromBig(a)
		gb := gfPFromBig(b)

		check := func(name string, got *gfP, want *big.Int) {
			t.Helper()
			if got.BigInt().Cmp(want) != 0 {
				t.Fatalf("%s mismatch: limb=%v ref=%v (a=%v b=%v)", name, got.BigInt(), want, a, b)
			}
		}

		var r gfP
		gfpMul(&r, &ga, &gb)
		check("mul", &r, new(big.Int).Mod(new(big.Int).Mul(a, b), P))

		gfpAdd(&r, &ga, &gb)
		check("add", &r, new(big.Int).Mod(new(big.Int).Add(a, b), P))

		gfpSub(&r, &ga, &gb)
		check("sub", &r, new(big.Int).Mod(new(big.Int).Sub(a, b), P))

		gfpNeg(&r, &ga)
		check("neg", &r, new(big.Int).Mod(new(big.Int).Neg(a), P))

		gfpDouble(&r, &ga)
		check("double", &r, new(big.Int).Mod(new(big.Int).Lsh(a, 1), P))

		if a.Sign() != 0 {
			r.Invert(&ga)
			check("inv", &r, new(big.Int).ModInverse(a, P))
		}

		yy := new(big.Int).Mod(new(big.Int).Mul(a, a), P)
		gyy := gfPFromBig(yy)
		if !r.Sqrt(&gyy) {
			t.Fatal("Sqrt failed on a perfect square")
		}
		want := new(big.Int).ModSqrt(yy, P)
		check("sqrt", &r, want)
	}
}

func TestDiffGfPMarshal(t *testing.T) {
	for i := 0; i < 20; i++ {
		a := randBigMod(t, P)
		ga := gfPFromBig(a)
		var out [32]byte
		ga.Marshal(out[:])
		var want [32]byte
		a.FillBytes(want[:])
		if !bytes.Equal(out[:], want[:]) {
			t.Fatalf("Marshal bytes differ from big-endian big.Int encoding: %x vs %x", out, want)
		}
		var back gfP
		if err := back.Unmarshal(out[:]); err != nil {
			t.Fatal(err)
		}
		if !back.Equal(&ga) {
			t.Fatal("Unmarshal(Marshal(a)) != a")
		}
	}
}

func randRefGFp2(t *testing.T) *refGfP2 {
	t.Helper()
	return &refGfP2{x: randBigMod(t, P), y: randBigMod(t, P)}
}

func TestDiffGfP2Ops(t *testing.T) {
	for i := 0; i < 25; i++ {
		ra := randRefGFp2(t)
		rb := randRefGFp2(t)
		la := gfP2FromRef(ra)
		lb := gfP2FromRef(rb)

		check := func(name string, limb *gfP2, ref *refGfP2) {
			t.Helper()
			if !refGfP2FromLimb(limb).Equal(ref) {
				t.Fatalf("gfP2 %s mismatch (iteration %d)", name, i)
			}
		}

		check("mul", newGFp2().Mul(la, lb), newRefGFp2().Mul(ra, rb))
		check("square", newGFp2().Square(la), newRefGFp2().Square(ra))
		check("add", newGFp2().Add(la, lb), newRefGFp2().Add(ra, rb))
		check("sub", newGFp2().Sub(la, lb), newRefGFp2().Sub(ra, rb))
		check("mulXi", newGFp2().MulXi(la), newRefGFp2().MulXi(ra))
		check("conj", newGFp2().Conjugate(la), newRefGFp2().Conjugate(ra))
		if !ra.IsZero() {
			check("invert", newGFp2().Invert(la), newRefGFp2().Invert(ra))
		}
	}
}

func TestDiffGfP12Ops(t *testing.T) {
	for i := 0; i < 10; i++ {
		la := randGFp12(t)
		lb := randGFp12(t)
		ra := refGfP12FromLimb(la)
		rb := refGfP12FromLimb(lb)

		check := func(name string, limb *gfP12, ref *refGfP12) {
			t.Helper()
			if !refGfP12FromLimb(limb).Equal(ref) {
				t.Fatalf("gfP12 %s mismatch (iteration %d)", name, i)
			}
		}

		check("mul", newGFp12().Mul(la, lb), newRefGFp12().Mul(ra, rb))
		check("square", newGFp12().Square(la), newRefGFp12().Square(ra))
		check("invert", newGFp12().Invert(la), newRefGFp12().Invert(ra))
		check("frobenius", newGFp12().Frobenius(la), newRefGFp12().Frobenius(ra))
		check("frobeniusP2", newGFp12().FrobeniusP2(la), newRefGFp12().FrobeniusP2(ra))
	}
}

func TestDiffCyclotomic(t *testing.T) {
	// Cyclotomic operations are only defined on pairing outputs, so start
	// from random GT elements rather than arbitrary gfP12 values.
	for i := 0; i < 5; i++ {
		a := randBigMod(t, Order)
		k := randBigMod(t, Order)
		lz := newGFp12().Exp(gtGen, a)
		rz := refGfP12FromLimb(lz)

		lsq := newGFp12().CyclotomicSquare(lz)
		rsq := newRefGFp12().CyclotomicSquare(rz)
		if !refGfP12FromLimb(lsq).Equal(rsq) {
			t.Fatalf("CyclotomicSquare mismatch (iteration %d)", i)
		}

		lexp := newGFp12().cyclotomicExp(lz, k)
		rexp := newRefGFp12().cyclotomicExp(rz, k)
		if !refGfP12FromLimb(lexp).Equal(rexp) {
			t.Fatalf("cyclotomicExp mismatch (iteration %d)", i)
		}
	}
}

func TestDiffCurveOps(t *testing.T) {
	for i := 0; i < 5; i++ {
		a := randBigMod(t, Order)
		b := randBigMod(t, Order)

		lp := newCurvePoint().Mul(curveGen, a)
		rp := newRefCurvePoint().Mul(refCurveGen, a)
		if !refCurvePointFromLimb(lp).Equal(rp) {
			t.Fatalf("G1 scalar mult mismatch (iteration %d)", i)
		}

		lq := newCurvePoint().Mul(curveGen, b)
		rq := newRefCurvePoint().Mul(refCurveGen, b)

		lsum := newCurvePoint().Add(lp, lq)
		rsum := newRefCurvePoint().Add(rp, rq)
		if !refCurvePointFromLimb(lsum).Equal(rsum) {
			t.Fatalf("G1 add mismatch (iteration %d)", i)
		}

		ldbl := newCurvePoint().Double(lp)
		rdbl := newRefCurvePoint().Double(rp)
		if !refCurvePointFromLimb(ldbl).Equal(rdbl) {
			t.Fatalf("G1 double mismatch (iteration %d)", i)
		}
	}
}

func TestDiffTwistOps(t *testing.T) {
	for i := 0; i < 3; i++ {
		a := randBigMod(t, Order)
		b := randBigMod(t, Order)

		lp := newTwistPoint().Mul(twistGen, a)
		rp := newRefTwistPoint().Mul(refTwistGen, a)
		if !refTwistPointFromLimb(lp).Equal(rp) {
			t.Fatalf("G2 scalar mult mismatch (iteration %d)", i)
		}

		lq := newTwistPoint().Mul(twistGen, b)
		rq := newRefTwistPoint().Mul(refTwistGen, b)

		lsum := newTwistPoint().Add(lp, lq)
		rsum := newRefTwistPoint().Add(rp, rq)
		if !refTwistPointFromLimb(lsum).Equal(rsum) {
			t.Fatalf("G2 add mismatch (iteration %d)", i)
		}
	}
}

func TestDiffPairing(t *testing.T) {
	// The limb core's projective Miller loop and the reference core's affine
	// Miller loop produce raw values differing by F_p² scale factors, which
	// the final exponentiation kills — so the comparison is on the full
	// pairing, not the raw Miller output.
	for i := 0; i < 2; i++ {
		a := randBigMod(t, Order)
		b := randBigMod(t, Order)

		lp := newCurvePoint().Mul(curveGen, a)
		lq := newTwistPoint().Mul(twistGen, b)

		limb := atePairing(lq, lp)
		ref := refAtePairing(refTwistPointFromLimb(lq), refCurvePointFromLimb(lp))
		if !refGfP12FromLimb(limb).Equal(ref) {
			t.Fatalf("ate pairing mismatch between limb and reference core (iteration %d)", i)
		}
	}

	// Generators themselves.
	limb := atePairing(twistGen, curveGen)
	ref := refAtePairing(refTwistGen, refCurveGen)
	if !refGfP12FromLimb(limb).Equal(ref) {
		t.Fatal("e(g1, g2) differs between limb and reference core")
	}
}

func TestDiffHashToG1(t *testing.T) {
	// HashToG1 must land on identical points in both representations, since
	// its output feeds protocol transcripts byte-for-byte.
	for _, msg := range []string{"", "peace", "metropolitan mesh"} {
		h := HashToG1([]byte(msg))
		rp := refCurvePointFromLimb(h.p)
		if !rp.IsOnCurve() {
			t.Fatalf("HashToG1(%q) not on curve under reference check", msg)
		}
		if !newRefCurvePoint().Mul(rp, Order).IsInfinity() {
			t.Fatalf("HashToG1(%q) not in the order-n subgroup under reference check", msg)
		}
		// The pure big.Int hash path must land on the identical point.
		if !refHashToG1([]byte(msg)).Equal(rp) {
			t.Fatalf("refHashToG1(%q) differs from limb HashToG1", msg)
		}
	}
}

// TestScalarMultCycloMatchesScalarMult pins the cyclotomic GT exponentiation
// (used by the sgs verifier) to the generic square-and-multiply path.
func TestScalarMultCycloMatchesScalarMult(t *testing.T) {
	for i := 0; i < 5; i++ {
		a := randBigMod(t, Order)
		k := randBigMod(t, Order)
		z := new(GT).ScalarBaseMult(a)

		fast := new(GT).ScalarMultCyclo(z, k)
		slow := new(GT).ScalarMult(z, k)
		if !fast.Equal(slow) {
			t.Fatalf("ScalarMultCyclo disagrees with ScalarMult (iteration %d)", i)
		}

		viaExp := &GT{p: newGFp12().Exp(z.p, k)}
		if !fast.Equal(viaExp) {
			t.Fatalf("ScalarMultCyclo disagrees with generic Exp (iteration %d)", i)
		}
	}

	// Edge scalars.
	z := new(GT).Base()
	if !new(GT).ScalarMultCyclo(z, big.NewInt(0)).IsOne() {
		t.Fatal("z^0 != 1")
	}
	if !new(GT).ScalarMultCyclo(z, big.NewInt(1)).Equal(z) {
		t.Fatal("z^1 != z")
	}
	if !new(GT).ScalarMultCyclo(z, Order).IsOne() {
		t.Fatal("z^n != 1")
	}
}
