package bn256

import "math/big"

// This file implements the (plain) ate pairing
//
//	e(Q, P) = f_{T,Q}(P)^((p¹²−1)/n),  T = t − 1 = 6u²,
//
// for Q in the order-n subgroup of the twist and P ∈ E(F_p). The Miller
// loop uses the inversion-free projective line functions of Costello et al.
// ("Faster Computation of the Tate Pairing", arXiv:0904.0854): the running
// point R stays in Jacobian coordinates on the twist (with t caching z²)
// and every doubling/addition step emits the three F_p² coefficients of the
// sparse line element
//
//	l(P) = c0·y_P + c1·x_P·w + c3·w³,
//
// where w⁶ = ξ is the untwist generator. The projective formulas scale the
// line by an overall F_p² factor relative to the affine chord/tangent; that
// factor lies in a proper subfield of F_p¹² and is erased by the final
// exponentiation.
//
// Line coefficients depend only on Q, so the doubling/addition schedule for
// the fixed loop count T can be computed once per Q and replayed against
// many P — that is exactly what PreparedG2 does. miller() itself is just
// prepareLines + evalMiller.

// preparedLine holds the P-independent coefficients of one Miller-loop line.
// At evaluation time c1 is scaled by x_P and c0 by y_P (both base-field
// scalars), then the sparse product f·(c0 + c1·ω + c3·τω) is formed.
type preparedLine struct {
	c3, c1, c0 gfP2
}

// lineDouble doubles r in place (Jacobian, r.t = r.z²) and returns the
// tangent-line coefficients at r before doubling.
func lineDouble(r *twistPoint) preparedLine {
	var A, B, C, D, E, G, t gfP2
	A.Square(&r.x)
	B.Square(&r.y)
	C.Square(&B)

	D.Add(&r.x, &B)
	D.Square(&D)
	D.Sub(&D, &A)
	D.Sub(&D, &C)
	D.Double(&D)

	E.Double(&A)
	E.Add(&E, &A)
	G.Square(&E)

	var rx, ry, rz, rt gfP2
	rx.Sub(&G, &D)
	rx.Sub(&rx, &D)

	rz.Add(&r.y, &r.z)
	rz.Square(&rz)
	rz.Sub(&rz, &B)
	rz.Sub(&rz, &r.t)

	ry.Sub(&D, &rx)
	ry.Mul(&ry, &E)
	t.Double(&C)
	t.Double(&t)
	t.Double(&t)
	ry.Sub(&ry, &t)

	rt.Square(&rz)

	var line preparedLine
	// c1·x_P with c1 = −2·E·z_R².
	t.Mul(&E, &r.t)
	t.Double(&t)
	line.c1.Neg(&t)

	// c3 = (x_R + E)² − A − G − 4B.
	line.c3.Add(&r.x, &E)
	line.c3.Square(&line.c3)
	line.c3.Sub(&line.c3, &A)
	line.c3.Sub(&line.c3, &G)
	t.Double(&B)
	t.Double(&t)
	line.c3.Sub(&line.c3, &t)

	// c0·y_P with c0 = 2·z_out·z_R².
	line.c0.Mul(&rz, &r.t)
	line.c0.Double(&line.c0)

	r.x = rx
	r.y = ry
	r.z = rz
	r.t = rt
	return line
}

// lineAdd mixed-adds the affine point q (z = t = 1) to r in place and
// returns the chord-line coefficients. qy2 must be q.y², precomputed once
// per Miller loop.
func lineAdd(r, q *twistPoint, qy2 *gfP2) preparedLine {
	var B, D, H, I, E, J, L1, V, t, t2 gfP2
	B.Mul(&q.x, &r.t)

	D.Add(&q.y, &r.z)
	D.Square(&D)
	D.Sub(&D, qy2)
	D.Sub(&D, &r.t)
	D.Mul(&D, &r.t) // 2·y_Q·z_R³

	H.Sub(&B, &r.x)
	I.Square(&H)

	E.Double(&I)
	E.Double(&E)

	J.Mul(&H, &E)

	L1.Sub(&D, &r.y)
	L1.Sub(&L1, &r.y)

	V.Mul(&r.x, &E)

	var rx, ry, rz, rt gfP2
	rx.Square(&L1)
	rx.Sub(&rx, &J)
	rx.Sub(&rx, &V)
	rx.Sub(&rx, &V)

	rz.Add(&r.z, &H)
	rz.Square(&rz)
	rz.Sub(&rz, &r.t)
	rz.Sub(&rz, &I)

	t.Sub(&V, &rx)
	t.Mul(&t, &L1)
	t2.Mul(&r.y, &J)
	t2.Double(&t2)
	ry.Sub(&t, &t2)

	rt.Square(&rz)

	var line preparedLine
	// c3 = 2·L1·x_Q − ((y_Q + z_out)² − y_Q² − z_out²).
	t.Add(&q.y, &rz)
	t.Square(&t)
	t.Sub(&t, qy2)
	t.Sub(&t, &rt)
	t2.Mul(&L1, &q.x)
	t2.Double(&t2)
	line.c3.Sub(&t2, &t)

	// c1·x_P with c1 = −2·L1.
	line.c1.Neg(&L1)
	line.c1.Double(&line.c1)

	// c0·y_P with c0 = 2·z_out.
	line.c0.Double(&rz)

	r.x = rx
	r.y = ry
	r.z = rz
	r.t = rt
	return line
}

// prepareLines runs the Miller doubling/addition schedule for the fixed
// loop count T = ateLoopCount over q alone, recording one preparedLine per
// step in loop order. evalMiller replays the same schedule, so the i-th
// recorded line is consumed at the i-th step.
func prepareLines(q *twistPoint) []preparedLine {
	qa := newTwistPoint().Set(q)
	qa.MakeAffine()
	qy2 := newGFp2().Square(&qa.y)

	r := newTwistPoint().Set(qa)
	t := ateLoopCount
	steps := make([]preparedLine, 0, t.BitLen()+popCount(t))
	for i := t.BitLen() - 2; i >= 0; i-- {
		steps = append(steps, lineDouble(r))
		if t.Bit(i) != 0 {
			steps = append(steps, lineAdd(r, qa, qy2))
		}
	}
	return steps
}

func popCount(n *big.Int) int {
	c := 0
	for _, w := range n.Bits() {
		for ; w != 0; w &= w - 1 {
			c++
		}
	}
	return c
}

// evalMiller computes f_{T,Q}(P) from Q's precomputed line schedule.
func evalMiller(steps []preparedLine, p *curvePoint) *gfP12 {
	pa := newCurvePoint().Set(p)
	pa.MakeAffine()

	f := newGFp12().SetOne()
	var c0, c1 gfP2
	idx := 0
	t := ateLoopCount
	for i := t.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		s := &steps[idx]
		idx++
		c1.MulScalar(&s.c1, &pa.x)
		c0.MulScalar(&s.c0, &pa.y)
		f.MulLine(f, &c0, &c1, &s.c3)
		if t.Bit(i) != 0 {
			s = &steps[idx]
			idx++
			c1.MulScalar(&s.c1, &pa.x)
			c0.MulScalar(&s.c0, &pa.y)
			f.MulLine(f, &c0, &c1, &s.c3)
		}
	}
	return f
}

// miller computes f_{T,Q}(P) for T = ateLoopCount.
func miller(q *twistPoint, p *curvePoint) *gfP12 {
	return evalMiller(prepareLines(q), p)
}

// finalExponentiationEasy computes f^((p⁶−1)(p²+1)), mapping f into the
// cyclotomic subgroup.
func finalExponentiationEasy(in *gfP12) *gfP12 {
	t1 := newGFp12().Conjugate(in) // in^(p⁶)
	inv := newGFp12().Invert(in)
	t1.Mul(t1, inv) // in^(p⁶−1)
	t2 := newGFp12().FrobeniusP2(t1)
	t1.Mul(t1, t2) // ^(p²+1)
	return t1
}

// finalExponentiation computes f^((p¹²−1)/n) using the Devegili–Scott–Dahab
// addition chain for BN curves in the hard part. After the easy part the
// value lies in the cyclotomic subgroup, so the three exponentiations by u
// and the chain's squarings use the cheaper cyclotomic arithmetic
// (Granger–Scott squaring, conjugation as inversion under NAF recoding).
func finalExponentiation(in *gfP12) *gfP12 {
	t1 := finalExponentiationEasy(in)

	fp := newGFp12().Frobenius(t1)
	fp2 := newGFp12().FrobeniusP2(t1)
	fp3 := newGFp12().Frobenius(fp2)

	fu := newGFp12().cyclotomicExp(t1, u)
	fu2 := newGFp12().cyclotomicExp(fu, u)
	fu3 := newGFp12().cyclotomicExp(fu2, u)

	y3 := newGFp12().Frobenius(fu)
	fu2p := newGFp12().Frobenius(fu2)
	fu3p := newGFp12().Frobenius(fu3)
	y2 := newGFp12().FrobeniusP2(fu2)

	y0 := newGFp12().Mul(fp, fp2)
	y0.Mul(y0, fp3)

	y1 := newGFp12().Conjugate(t1)
	y5 := newGFp12().Conjugate(fu2)
	y3.Conjugate(y3)
	y4 := newGFp12().Mul(fu, fu2p)
	y4.Conjugate(y4)
	y6 := newGFp12().Mul(fu3, fu3p)
	y6.Conjugate(y6)

	t0 := newGFp12().CyclotomicSquare(y6)
	t0.Mul(t0, y4)
	t0.Mul(t0, y5)
	t1b := newGFp12().Mul(y3, y5)
	t1b.Mul(t1b, t0)
	t0.Mul(t0, y2)
	t1b.CyclotomicSquare(t1b)
	t1b.Mul(t1b, t0)
	t1b.CyclotomicSquare(t1b)
	t0.Mul(t1b, y1)
	t1b.Mul(t1b, y0)
	t0.CyclotomicSquare(t0)
	t0.Mul(t0, t1b)
	return t0
}

// finalExponentiationGeneric computes f^((p¹²−1)/n) the slow, unambiguous
// way: the easy part followed by a plain exponentiation by (p⁴−p²+1)/n.
// The test suite asserts it agrees with finalExponentiation.
func finalExponentiationGeneric(in *gfP12) *gfP12 {
	t := finalExponentiationEasy(in)

	p2 := new(big.Int).Mul(P, P)
	p4 := new(big.Int).Mul(p2, p2)
	e := new(big.Int).Sub(p4, p2)
	e.Add(e, big.NewInt(1))
	e.Div(e, Order)
	return newGFp12().Exp(t, e)
}

// atePairing computes e(Q, P). If either input is the identity, the result
// is the identity of GT.
func atePairing(q *twistPoint, p *curvePoint) *gfP12 {
	if q.IsInfinity() || p.IsInfinity() {
		return newGFp12().SetOne()
	}
	return finalExponentiation(miller(q, p))
}
