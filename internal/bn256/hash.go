package bn256

import (
	"crypto/sha256"
	"encoding/binary"
	"math/big"
)

// This file implements deterministic hashing into the three groups and into
// the scalar field. The constructions are the classic try-and-increment
// maps: hash output is interpreted as an x-coordinate candidate and bumped
// by a counter until a curve point is found; for G2 the twist cofactor is
// cleared afterwards. These maps are not constant-time, which is acceptable
// for this reproduction (inputs are public protocol transcripts).

// hashWithTag computes SHA-256("peace/bn256:" || tag || ":" || ctr || msg).
func hashWithTag(tag string, ctr uint32, msg []byte) [32]byte {
	h := sha256.New()
	h.Write([]byte("peace/bn256:"))
	h.Write([]byte(tag))
	h.Write([]byte{':'})
	var c [4]byte
	binary.BigEndian.PutUint32(c[:], ctr)
	h.Write(c[:])
	h.Write(msg)
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// HashToScalar hashes msg into Z_n*.
func HashToScalar(msg []byte) *big.Int {
	for ctr := uint32(0); ; ctr++ {
		d := hashWithTag("scalar", ctr, msg)
		k := new(big.Int).SetBytes(d[:])
		k.Mod(k, Order)
		if k.Sign() != 0 {
			return k
		}
	}
}

// HashToScalars hashes msg into count independent elements of Z_n*.
func HashToScalars(msg []byte, count int) []*big.Int {
	out := make([]*big.Int, count)
	for i := range out {
		tagged := make([]byte, 0, len(msg)+4)
		var idx [4]byte
		binary.BigEndian.PutUint32(idx[:], uint32(i))
		tagged = append(tagged, idx[:]...)
		tagged = append(tagged, msg...)
		out[i] = HashToScalar(tagged)
	}
	return out
}

// HashToG1 hashes msg to a point of G1 by try-and-increment. E(F_p) has
// prime order, so every curve point lies in the group. The limb-core Sqrt
// returns the same root as the retired big.Int ModSqrt (p ≡ 3 mod 4), so
// the derived points are byte-identical across cores.
func HashToG1(msg []byte) *G1 {
	for ctr := uint32(0); ; ctr++ {
		d := hashWithTag("g1", ctr, msg)
		x := gfPFromBig(new(big.Int).SetBytes(d[:]))

		// y² = x³ + 3
		var yy, y gfP
		gfpMul(&yy, &x, &x)
		gfpMul(&yy, &yy, &x)
		gfpAdd(&yy, &yy, &curveBGfP)

		if !y.Sqrt(&yy) {
			continue
		}
		// Deterministic sign choice from the hash.
		if d[31]&1 == 1 {
			gfpNeg(&y, &y)
		}
		pt := newCurvePoint()
		pt.x = x
		pt.y = y
		pt.z.SetOne()
		pt.t.SetOne()
		return &G1{p: pt}
	}
}

// HashToG2 hashes msg to a point of G2: try-and-increment on the twist
// followed by cofactor clearing.
func HashToG2(msg []byte) *G2 {
	for ctr := uint32(0); ; ctr++ {
		dx := hashWithTag("g2:x", ctr, msg)
		dy := hashWithTag("g2:y", ctr, msg)
		xCand := newGFp2()
		xCand.x = gfPFromBig(new(big.Int).SetBytes(dx[:]))
		xCand.y = gfPFromBig(new(big.Int).SetBytes(dy[:]))
		if pt := mapToTwistSubgroup(xCand); pt != nil {
			return &G2{p: pt}
		}
	}
}
