package bn256

import (
	"crypto/rand"
	"testing"
)

// TestMulLineMatchesGenericMul cross-checks the sparse line multiplication
// against the general gfP12 multiplication on random inputs.
func TestMulLineMatchesGenericMul(t *testing.T) {
	for i := 0; i < 25; i++ {
		a := randGFp12(t)
		c0, err := rand.Int(rand.Reader, P)
		if err != nil {
			t.Fatal(err)
		}
		c1 := randGFp2(t)
		c3 := randGFp2(t)

		sparse := newGFp12().MulLine(a, c0, c1, c3)
		generic := newGFp12().Mul(a, lineValue(c0, c1, c3))
		if !sparse.Equal(generic) {
			t.Fatalf("MulLine disagrees with generic multiplication (iteration %d)", i)
		}
	}
}

// TestMulSparse2MatchesGenericMul checks the two-slot gfP6 sparse multiply.
func TestMulSparse2MatchesGenericMul(t *testing.T) {
	for i := 0; i < 25; i++ {
		a := randGFp6(t)
		y2 := randGFp2(t)
		z2 := randGFp2(t)

		sparse := newGFp6().MulSparse2(a, y2, z2)
		full := &gfP6{x: newGFp2(), y: newGFp2().Set(y2), z: newGFp2().Set(z2)}
		generic := newGFp6().Mul(a, full)
		if !sparse.Equal(generic) {
			t.Fatalf("MulSparse2 disagrees with generic multiplication (iteration %d)", i)
		}
	}
}

// TestMulLineAliasing ensures e may alias a.
func TestMulLineAliasing(t *testing.T) {
	a := randGFp12(t)
	c0, _ := rand.Int(rand.Reader, P)
	c1, c3 := randGFp2(t), randGFp2(t)

	want := newGFp12().MulLine(a, c0, c1, c3)
	got := newGFp12().Set(a)
	got.MulLine(got, c0, c1, c3)
	if !got.Equal(want) {
		t.Fatal("MulLine aliasing broke the result")
	}
}
