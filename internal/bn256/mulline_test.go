package bn256

import "testing"

// lineValue assembles the dense gfP12 equivalent of the sparse line element
// c0 + c1·ω + c3·τω, for cross-checking MulLine against the generic Mul.
func lineValue(c0, c1, c3 *gfP2) *gfP12 {
	l := newGFp12()
	l.y.z.Set(c0) // w⁰
	l.x.z.Set(c1) // w¹ = ω
	l.x.y.Set(c3) // w³ = τ·ω
	return l
}

// TestMulLineMatchesGenericMul cross-checks the sparse line multiplication
// against the general gfP12 multiplication on random inputs.
func TestMulLineMatchesGenericMul(t *testing.T) {
	for i := 0; i < 25; i++ {
		a := randGFp12(t)
		c0 := randGFp2(t)
		c1 := randGFp2(t)
		c3 := randGFp2(t)

		sparse := newGFp12().MulLine(a, c0, c1, c3)
		generic := newGFp12().Mul(a, lineValue(c0, c1, c3))
		if !sparse.Equal(generic) {
			t.Fatalf("MulLine disagrees with generic multiplication (iteration %d)", i)
		}
	}
}

// TestMulSparse2MatchesGenericMul checks the two-slot gfP6 sparse multiply.
func TestMulSparse2MatchesGenericMul(t *testing.T) {
	for i := 0; i < 25; i++ {
		a := randGFp6(t)
		y2 := randGFp2(t)
		z2 := randGFp2(t)

		sparse := newGFp6().MulSparse2(a, y2, z2)
		full := &gfP6{y: *newGFp2().Set(y2), z: *newGFp2().Set(z2)}
		generic := newGFp6().Mul(a, full)
		if !sparse.Equal(generic) {
			t.Fatalf("MulSparse2 disagrees with generic multiplication (iteration %d)", i)
		}
	}
}

// TestMulLineAliasing ensures e may alias a.
func TestMulLineAliasing(t *testing.T) {
	a := randGFp12(t)
	c0, c1, c3 := randGFp2(t), randGFp2(t), randGFp2(t)

	want := newGFp12().MulLine(a, c0, c1, c3)
	got := newGFp12().Set(a)
	got.MulLine(got, c0, c1, c3)
	if !got.Equal(want) {
		t.Fatal("MulLine aliasing broke the result")
	}
}
