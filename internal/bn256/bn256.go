package bn256

import (
	"crypto/rand"
	"errors"
	"io"
	"math/big"
)

// numBytes is the byte length of a base-field element in marshaled form.
const numBytes = 32

// Marshaled sizes of the three group element types.
const (
	G1Size = 2 * numBytes  // 64 bytes
	G2Size = 4 * numBytes  // 128 bytes
	GTSize = 12 * numBytes // 384 bytes
)

// Exported errors for element validation.
var (
	ErrMalformedPoint = errors.New("bn256: malformed point encoding")
	ErrNotOnCurve     = errors.New("bn256: point not on curve")
)

// G1 is an abstract cyclic group of order Order. The zero value is not
// valid; obtain elements via the constructors or Set-style methods.
type G1 struct {
	p *curvePoint
}

// G2 is an abstract cyclic group of order Order.
type G2 struct {
	p *twistPoint
}

// GT is an abstract cyclic group of order Order, written multiplicatively
// in the PEACE protocol but exposed with Add/Neg names for parity with
// classic bn256 APIs (Add multiplies, Neg inverts).
type GT struct {
	p *gfP12
}

// RandomG1 returns k and g1^k where k is taken from r.
func RandomG1(r io.Reader) (*big.Int, *G1, error) {
	k, err := RandomScalar(r)
	if err != nil {
		return nil, nil, err
	}
	return k, new(G1).ScalarBaseMult(k), nil
}

// RandomG2 returns k and g2^k where k is taken from r.
func RandomG2(r io.Reader) (*big.Int, *G2, error) {
	k, err := RandomScalar(r)
	if err != nil {
		return nil, nil, err
	}
	return k, new(G2).ScalarBaseMult(k), nil
}

// RandomScalar returns a uniform element of Z_n*.
func RandomScalar(r io.Reader) (*big.Int, error) {
	for {
		k, err := rand.Int(r, Order)
		if err != nil {
			return nil, err
		}
		if k.Sign() != 0 {
			return k, nil
		}
	}
}

func (e *G1) String() string { return "bn256.G1" + e.p.String() }

// Base returns the canonical generator of G1.
func (e *G1) Base() *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	e.p.Set(curveGen)
	return e
}

// ScalarBaseMult sets e = g1^k and returns e. It uses the process-wide
// precomputed window table for the generator (built lazily on first use).
func (e *G1) ScalarBaseMult(k *big.Int) *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	baseCurveTable().mul(e.p, k)
	return e
}

// ScalarMult sets e = a^k and returns e.
func (e *G1) ScalarMult(a *G1, k *big.Int) *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	e.p.Mul(a.p, k)
	return e
}

// Add sets e = a·b (the group operation) and returns e.
func (e *G1) Add(a, b *G1) *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	e.p.Add(a.p, b.p)
	return e
}

// Neg sets e = a^(−1) and returns e.
func (e *G1) Neg(a *G1) *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	e.p.Negative(a.p)
	return e
}

// Set sets e = a and returns e.
func (e *G1) Set(a *G1) *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	e.p.Set(a.p)
	return e
}

// SetInfinity sets e to the group identity.
func (e *G1) SetInfinity() *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	e.p.SetInfinity()
	return e
}

// IsInfinity reports whether e is the group identity.
func (e *G1) IsInfinity() bool { return e.p.IsInfinity() }

// Equal reports whether e and a are the same group element.
func (e *G1) Equal(a *G1) bool { return e.p.Equal(a.p) }

// Marshal converts e to a 64-byte slice. It does not modify e, so a point
// shared between goroutines (a broadcast beacon share, a group public key)
// may be marshaled concurrently.
func (e *G1) Marshal() []byte {
	out := make([]byte, G1Size)
	if e.p.IsInfinity() {
		return out
	}
	p := newCurvePoint().Set(e.p)
	p.MakeAffine()
	p.x.Marshal(out[0*numBytes : 1*numBytes])
	p.y.Marshal(out[1*numBytes : 2*numBytes])
	return out
}

// Unmarshal sets e to the point encoded in m and validates it.
func (e *G1) Unmarshal(m []byte) (*G1, error) {
	if len(m) != G1Size {
		return nil, ErrMalformedPoint
	}
	if e.p == nil {
		e.p = newCurvePoint()
	}
	if allZero(m) {
		e.p.SetInfinity()
		return e, nil
	}
	if err := e.p.x.Unmarshal(m[0*numBytes : 1*numBytes]); err != nil {
		return nil, err
	}
	if err := e.p.y.Unmarshal(m[1*numBytes : 2*numBytes]); err != nil {
		return nil, err
	}
	e.p.z.SetOne()
	e.p.t.SetOne()
	if !e.p.IsOnCurve() {
		return nil, ErrNotOnCurve
	}
	return e, nil
}

func (e *G2) String() string { return "bn256.G2" + e.p.String() }

// Base returns the canonical generator of G2.
func (e *G2) Base() *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	e.p.Set(twistGen)
	return e
}

// ScalarBaseMult sets e = g2^k and returns e. It uses the process-wide
// precomputed window table for the generator (built lazily on first use).
func (e *G2) ScalarBaseMult(k *big.Int) *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	baseTwistTable().mul(e.p, k)
	return e
}

// ScalarMult sets e = a^k and returns e.
func (e *G2) ScalarMult(a *G2, k *big.Int) *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	e.p.Mul(a.p, k)
	return e
}

// Add sets e = a·b (the group operation) and returns e.
func (e *G2) Add(a, b *G2) *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	e.p.Add(a.p, b.p)
	return e
}

// Neg sets e = a^(−1) and returns e.
func (e *G2) Neg(a *G2) *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	e.p.Negative(a.p)
	return e
}

// Set sets e = a and returns e.
func (e *G2) Set(a *G2) *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	e.p.Set(a.p)
	return e
}

// SetInfinity sets e to the group identity.
func (e *G2) SetInfinity() *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	e.p.SetInfinity()
	return e
}

// IsInfinity reports whether e is the group identity.
func (e *G2) IsInfinity() bool { return e.p.IsInfinity() }

// Equal reports whether e and a are the same group element.
func (e *G2) Equal(a *G2) bool { return e.p.Equal(a.p) }

// Marshal converts e to a 128-byte slice. It does not modify e and is safe
// for concurrent use on a shared point.
func (e *G2) Marshal() []byte {
	out := make([]byte, G2Size)
	if e.p.IsInfinity() {
		return out
	}
	p := newTwistPoint().Set(e.p)
	p.MakeAffine()
	p.x.x.Marshal(out[0*numBytes : 1*numBytes])
	p.x.y.Marshal(out[1*numBytes : 2*numBytes])
	p.y.x.Marshal(out[2*numBytes : 3*numBytes])
	p.y.y.Marshal(out[3*numBytes : 4*numBytes])
	return out
}

// Unmarshal sets e to the point encoded in m, validating curve and
// subgroup membership.
func (e *G2) Unmarshal(m []byte) (*G2, error) {
	if len(m) != G2Size {
		return nil, ErrMalformedPoint
	}
	if e.p == nil {
		e.p = newTwistPoint()
	}
	if allZero(m) {
		e.p.SetInfinity()
		return e, nil
	}
	for i, c := range []*gfP{&e.p.x.x, &e.p.x.y, &e.p.y.x, &e.p.y.y} {
		if err := c.Unmarshal(m[i*numBytes : (i+1)*numBytes]); err != nil {
			return nil, err
		}
	}
	e.p.z.SetOne()
	e.p.t.SetOne()
	if !e.p.IsOnCurve() {
		return nil, ErrNotOnCurve
	}
	return e, nil
}

func (e *GT) String() string { return "bn256.GT" + e.p.String() }

// Base returns e(g1, g2), the canonical generator of GT.
func (e *GT) Base() *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.Set(gtGen)
	return e
}

// ScalarBaseMult sets e = e(g1,g2)^k and returns e. The generator is a
// pairing value, so the exponentiation runs in the cyclotomic subgroup
// (Granger–Scott squarings under NAF recoding) rather than through the
// generic Exp.
func (e *GT) ScalarBaseMult(k *big.Int) *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.cyclotomicExp(gtGen, k)
	return e
}

// ScalarMult sets e = a^k and returns e. It makes no assumption about a and
// uses the generic square-and-multiply ladder; for elements known to be
// pairing values, ScalarMultCyclo is several times faster.
func (e *GT) ScalarMult(a *GT, k *big.Int) *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.Exp(a.p, k)
	return e
}

// ScalarMultCyclo sets e = a^k for a in the cyclotomic subgroup — which
// every properly constructed GT element (a pairing value, or any power of
// one) is. It is NOT valid for arbitrary F_p¹² elements smuggled in via
// Unmarshal; such elements only ever arise from malformed input, and every
// protocol-level verifier recomputes pairing equations rather than trusting
// unmarshaled GT arithmetic.
func (e *GT) ScalarMultCyclo(a *GT, k *big.Int) *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.cyclotomicExp(a.p, k)
	return e
}

// Add sets e = a·b (the group operation — GT is multiplicative).
func (e *GT) Add(a, b *GT) *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.Mul(a.p, b.p)
	return e
}

// Neg sets e = a^(−1). For pairing values the inverse is the conjugate,
// but Neg stays correct for arbitrary GT elements by inverting.
func (e *GT) Neg(a *GT) *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.Invert(a.p)
	return e
}

// Set sets e = a and returns e.
func (e *GT) Set(a *GT) *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.Set(a.p)
	return e
}

// SetOne sets e to the group identity.
func (e *GT) SetOne() *GT {
	if e.p == nil {
		e.p = newGFp12()
	}
	e.p.SetOne()
	return e
}

// IsOne reports whether e is the group identity.
func (e *GT) IsOne() bool { return e.p.IsOne() }

// Equal reports whether e and a are the same group element.
func (e *GT) Equal(a *GT) bool { return e.p.Equal(a.p) }

// Marshal converts e to a 384-byte slice. It does not modify e and is safe
// for concurrent use on a shared element.
func (e *GT) Marshal() []byte {
	out := make([]byte, GTSize)
	p := e.p
	coeffs := []*gfP{
		&p.x.x.x, &p.x.x.y, &p.x.y.x, &p.x.y.y, &p.x.z.x, &p.x.z.y,
		&p.y.x.x, &p.y.x.y, &p.y.y.x, &p.y.y.y, &p.y.z.x, &p.y.z.y,
	}
	for i, c := range coeffs {
		c.Marshal(out[i*numBytes : (i+1)*numBytes])
	}
	return out
}

// Unmarshal sets e to the element encoded in m.
func (e *GT) Unmarshal(m []byte) (*GT, error) {
	if len(m) != GTSize {
		return nil, ErrMalformedPoint
	}
	if e.p == nil {
		e.p = newGFp12()
	}
	coeffs := []*gfP{
		&e.p.x.x.x, &e.p.x.x.y, &e.p.x.y.x, &e.p.x.y.y, &e.p.x.z.x, &e.p.x.z.y,
		&e.p.y.x.x, &e.p.y.x.y, &e.p.y.y.x, &e.p.y.y.y, &e.p.y.z.x, &e.p.y.z.y,
	}
	for i, c := range coeffs {
		if err := c.Unmarshal(m[i*numBytes : (i+1)*numBytes]); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Pair computes the ate pairing e(g1, g2) ∈ GT.
func Pair(g1 *G1, g2 *G2) *GT {
	return &GT{p: atePairing(g2.p, g1.p)}
}

// Miller applies the Miller loop portion of the pairing without the final
// exponentiation. Miller values may be multiplied together (with GT.Add)
// and finalized once with Finalize, which is how products of pairings are
// evaluated at the cost of a single final exponentiation.
func Miller(g1 *G1, g2 *G2) *GT {
	if g1.p.IsInfinity() || g2.p.IsInfinity() {
		return &GT{p: newGFp12().SetOne()}
	}
	return &GT{p: miller(g2.p, g1.p)}
}

// Finalize performs the final exponentiation on an accumulated Miller
// value, turning it into a proper GT element.
func (e *GT) Finalize() *GT {
	e.p = finalExponentiation(e.p)
	return e
}

// PairingCheck reports whether Π e(g1[i], g2[i]) = 1 using a shared final
// exponentiation. It panics if the slices have different lengths.
func PairingCheck(g1s []*G1, g2s []*G2) bool {
	if len(g1s) != len(g2s) {
		panic("bn256: PairingCheck slice length mismatch")
	}
	acc := newGFp12().SetOne()
	for i := range g1s {
		if g1s[i].p.IsInfinity() || g2s[i].p.IsInfinity() {
			continue
		}
		acc.Mul(acc, miller(g2s[i].p, g1s[i].p))
	}
	return finalExponentiation(acc).IsOne()
}

func allZero(m []byte) bool {
	for _, b := range m {
		if b != 0 {
			return false
		}
	}
	return true
}
