package bn256

import (
	"bytes"
	"crypto/rand"
	"math/big"
	"testing"
)

func TestG1MarshalRoundTrip(t *testing.T) {
	for i := 0; i < 10; i++ {
		_, g, err := RandomG1(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		m := g.Marshal()
		if len(m) != G1Size {
			t.Fatalf("G1 marshal length = %d, want %d", len(m), G1Size)
		}
		g2, err := new(G1).Unmarshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(g2) {
			t.Fatal("G1 round-trip mismatch")
		}
	}
}

func TestG1MarshalInfinity(t *testing.T) {
	inf := new(G1).SetInfinity()
	m := inf.Marshal()
	if !allZero(m) {
		t.Fatal("infinity should marshal to zeros")
	}
	back, err := new(G1).Unmarshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsInfinity() {
		t.Fatal("unmarshaled zeros should be infinity")
	}
}

func TestG1UnmarshalRejectsGarbage(t *testing.T) {
	m := make([]byte, G1Size)
	for i := range m {
		m[i] = 0xAB
	}
	if _, err := new(G1).Unmarshal(m); err == nil {
		t.Fatal("expected error unmarshaling non-curve bytes")
	}
	if _, err := new(G1).Unmarshal(m[:G1Size-1]); err == nil {
		t.Fatal("expected error on short input")
	}
}

func TestG2MarshalRoundTrip(t *testing.T) {
	for i := 0; i < 5; i++ {
		_, g, err := RandomG2(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		m := g.Marshal()
		if len(m) != G2Size {
			t.Fatalf("G2 marshal length = %d, want %d", len(m), G2Size)
		}
		g2, err := new(G2).Unmarshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(g2) {
			t.Fatal("G2 round-trip mismatch")
		}
	}
}

func TestG2UnmarshalRejectsWrongSubgroup(t *testing.T) {
	// A point on the twist but outside the order-n subgroup must be
	// rejected. Build one by NOT clearing the cofactor.
	for ctr := uint32(0); ; ctr++ {
		hx := hashWithTag("test-subgroup-x", ctr, nil)
		xCand := newGFp2()
		xCand.x = gfPFromBig(new(big.Int).SetBytes(hx[:]))
		xCand.y = newGfP(int64(ctr))

		yy := newGFp2().Square(xCand)
		yy.Mul(yy, xCand)
		yy.Add(yy, twistB)
		y := newGFp2()
		if !y.Sqrt(yy) {
			continue
		}
		pt := newTwistPoint()
		pt.x.Set(xCand)
		pt.y.Set(y)
		pt.z.SetOne()
		pt.t.SetOne()

		// Skip the (negligible-probability) case the raw point already has
		// order n.
		if newTwistPoint().Mul(pt, Order).IsInfinity() {
			continue
		}
		g := &G2{p: pt}
		m := g.Marshal()
		if _, err := new(G2).Unmarshal(m); err == nil {
			t.Fatal("expected subgroup check to reject point")
		}
		return
	}
}

func TestGTMarshalRoundTrip(t *testing.T) {
	k, _ := RandomScalar(rand.Reader)
	g := new(GT).ScalarBaseMult(k)
	m := g.Marshal()
	if len(m) != GTSize {
		t.Fatalf("GT marshal length = %d, want %d", len(m), GTSize)
	}
	g2, err := new(GT).Unmarshal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !g.Equal(g2) {
		t.Fatal("GT round-trip mismatch")
	}
	if !bytes.Equal(m, g2.Marshal()) {
		t.Fatal("GT re-marshal mismatch")
	}
}

func TestPairViaPublicAPI(t *testing.T) {
	a, ga, _ := RandomG1(rand.Reader)
	b, gb, _ := RandomG2(rand.Reader)

	e1 := Pair(ga, gb)
	ab := new(GT).ScalarBaseMult(a)
	ab.ScalarMult(ab, b)
	if !e1.Equal(ab) {
		t.Fatal("Pair(aG1, bG2) != Base^(ab)")
	}
}

func TestHashToG1Deterministic(t *testing.T) {
	h1 := HashToG1([]byte("hello"))
	h2 := HashToG1([]byte("hello"))
	h3 := HashToG1([]byte("world"))
	if !h1.Equal(h2) {
		t.Fatal("HashToG1 not deterministic")
	}
	if h1.Equal(h3) {
		t.Fatal("HashToG1 collision on distinct inputs")
	}
	if h1.IsInfinity() {
		t.Fatal("HashToG1 returned identity")
	}
	if !h1.p.IsOnCurve() {
		t.Fatal("HashToG1 point not on curve")
	}
}

func TestHashToG2Valid(t *testing.T) {
	h := HashToG2([]byte("hello"))
	if h.IsInfinity() {
		t.Fatal("HashToG2 returned identity")
	}
	if !newTwistPoint().Mul(h.p, Order).IsInfinity() {
		t.Fatal("HashToG2 point not in order-n subgroup")
	}
	h2 := HashToG2([]byte("hello"))
	if !h.Equal(h2) {
		t.Fatal("HashToG2 not deterministic")
	}
}

func TestHashToScalars(t *testing.T) {
	ks := HashToScalars([]byte("seed"), 4)
	if len(ks) != 4 {
		t.Fatalf("got %d scalars, want 4", len(ks))
	}
	for i, k := range ks {
		if k.Sign() == 0 || k.Cmp(Order) >= 0 {
			t.Fatalf("scalar %d out of range", i)
		}
		for j := i + 1; j < len(ks); j++ {
			if k.Cmp(ks[j]) == 0 {
				t.Fatalf("scalars %d and %d equal", i, j)
			}
		}
	}
	again := HashToScalars([]byte("seed"), 4)
	for i := range ks {
		if ks[i].Cmp(again[i]) != 0 {
			t.Fatal("HashToScalars not deterministic")
		}
	}
}

func TestG1CompressedRoundTrip(t *testing.T) {
	for i := 0; i < 20; i++ {
		_, g, err := RandomG1(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		m := g.MarshalCompressed()
		if len(m) != G1CompressedSize {
			t.Fatalf("compressed length = %d", len(m))
		}
		back, err := new(G1).UnmarshalCompressed(m)
		if err != nil {
			t.Fatal(err)
		}
		if !g.Equal(back) {
			t.Fatal("compressed round-trip mismatch")
		}
	}
}

func TestG1CompressedInfinity(t *testing.T) {
	inf := new(G1).SetInfinity()
	m := inf.MarshalCompressed()
	back, err := new(G1).UnmarshalCompressed(m)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsInfinity() {
		t.Fatal("compressed infinity round-trip failed")
	}
	// Nonzero payload with infinity tag rejected.
	m[5] = 1
	if _, err := new(G1).UnmarshalCompressed(m); err == nil {
		t.Fatal("bad infinity encoding accepted")
	}
}

func TestG1CompressedRejectsGarbage(t *testing.T) {
	bad := make([]byte, G1CompressedSize)
	bad[0] = 0x07 // unknown tag
	if _, err := new(G1).UnmarshalCompressed(bad); err == nil {
		t.Fatal("unknown tag accepted")
	}
	// x with no square root: search for one deterministically.
	found := false
	for x := int64(1); x < 200 && !found; x++ {
		cand := make([]byte, G1CompressedSize)
		cand[0] = tagCompressedEven
		big.NewInt(x).FillBytes(cand[1:])
		if _, err := new(G1).UnmarshalCompressed(cand); err != nil {
			found = true
		}
	}
	if !found {
		t.Fatal("no non-residue x found in range (unexpected)")
	}
	if _, err := new(G1).UnmarshalCompressed(bad[:10]); err == nil {
		t.Fatal("short compressed encoding accepted")
	}
}
