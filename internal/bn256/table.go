package bn256

import (
	"math/big"
	"sync"
)

// This file implements fixed-base scalar multiplication with precomputed
// window tables. For a base B of order n, the table stores d·16^j·B for
// every window position j and digit d, so a 256-bit multiplication costs
// at most 64 point additions and no doublings. The canonical generators
// g1 and g2 get process-wide tables built lazily on first use (they
// cannot be built at package init because the twist generator itself is
// derived with Mul during init); callers with other long-lived bases —
// a group public key's w, the fixed-mode generators u and v — build
// their own via G1Table / G2Table.

const (
	tableWindowBits = 4
	tableWindows    = 256 / tableWindowBits // scalars are < 2^256 after reduction
	tableDigits     = 1<<tableWindowBits - 1
)

// curveTable holds win[j][d-1] = d·16^j·B for a fixed curve base B.
// Entries are Jacobian points and are never mutated after construction,
// so a table may be shared between goroutines.
type curveTable struct {
	win [tableWindows][tableDigits]*curvePoint
}

func newCurveTable(base *curvePoint) *curveTable {
	t := &curveTable{}
	cur := newCurvePoint().Set(base)
	for j := 0; j < tableWindows; j++ {
		t.win[j][0] = newCurvePoint().Set(cur)
		for d := 1; d < tableDigits; d++ {
			t.win[j][d] = newCurvePoint().Add(t.win[j][d-1], cur)
		}
		// cur ← 16·cur for the next window.
		next := newCurvePoint().Double(t.win[j][7]) // 8·16^j·B doubled
		cur.Set(next)
	}
	return t
}

// mul sets c = k·B. The scalar is reduced mod Order first (the table is
// only valid for bases of order n, which all table bases are).
func (t *curveTable) mul(c *curvePoint, k *big.Int) *curvePoint {
	k = reduceTableScalar(k)
	sum := newCurvePoint().SetInfinity()
	for j := 0; j < tableWindows; j++ {
		pos := j * tableWindowBits
		d := (k.Bit(pos+3) << 3) | (k.Bit(pos+2) << 2) | (k.Bit(pos+1) << 1) | k.Bit(pos)
		if d != 0 {
			sum.Add(sum, t.win[j][d-1])
		}
	}
	return c.Set(sum)
}

// twistTable is the G2 counterpart of curveTable.
type twistTable struct {
	win [tableWindows][tableDigits]*twistPoint
}

func newTwistTable(base *twistPoint) *twistTable {
	t := &twistTable{}
	cur := newTwistPoint().Set(base)
	for j := 0; j < tableWindows; j++ {
		t.win[j][0] = newTwistPoint().Set(cur)
		for d := 1; d < tableDigits; d++ {
			t.win[j][d] = newTwistPoint().Add(t.win[j][d-1], cur)
		}
		next := newTwistPoint().Double(t.win[j][7])
		cur.Set(next)
	}
	return t
}

func (t *twistTable) mul(c *twistPoint, k *big.Int) *twistPoint {
	k = reduceTableScalar(k)
	sum := newTwistPoint().SetInfinity()
	for j := 0; j < tableWindows; j++ {
		pos := j * tableWindowBits
		d := (k.Bit(pos+3) << 3) | (k.Bit(pos+2) << 2) | (k.Bit(pos+1) << 1) | k.Bit(pos)
		if d != 0 {
			sum.Add(sum, t.win[j][d-1])
		}
	}
	return c.Set(sum)
}

// reduceTableScalar brings k into [0, Order) when it does not already fit
// the table's 256-bit digit range. Scalars already in range are returned
// as-is (no allocation on the hot path).
func reduceTableScalar(k *big.Int) *big.Int {
	if k.Sign() < 0 || k.BitLen() > tableWindowBits*tableWindows {
		return new(big.Int).Mod(k, Order)
	}
	return k
}

// Lazy process-wide tables for the canonical generators.
var (
	curveGenTableOnce sync.Once
	curveGenTable     *curveTable

	twistGenTableOnce sync.Once
	twistGenTable     *twistTable
)

func baseCurveTable() *curveTable {
	curveGenTableOnce.Do(func() { curveGenTable = newCurveTable(curveGen) })
	return curveGenTable
}

func baseTwistTable() *twistTable {
	twistGenTableOnce.Do(func() { twistGenTable = newTwistTable(twistGen) })
	return twistGenTable
}

// G1Table is a precomputed fixed-base table for a G1 element. It is
// immutable after construction and safe for concurrent use.
type G1Table struct {
	t *curveTable
}

// NewG1Table precomputes the window table for base (≈ 1000 point
// additions, paid once). The base must not be the identity.
func NewG1Table(base *G1) *G1Table {
	return &G1Table{t: newCurveTable(base.p)}
}

// Mul sets e = base^k and returns e.
func (tb *G1Table) Mul(e *G1, k *big.Int) *G1 {
	if e.p == nil {
		e.p = newCurvePoint()
	}
	tb.t.mul(e.p, k)
	return e
}

// G2Table is a precomputed fixed-base table for a G2 element. It is
// immutable after construction and safe for concurrent use.
type G2Table struct {
	t *twistTable
}

// NewG2Table precomputes the window table for base. The base must not be
// the identity and must lie in the order-n subgroup.
func NewG2Table(base *G2) *G2Table {
	return &G2Table{t: newTwistTable(base.p)}
}

// Mul sets e = base^k and returns e.
func (tb *G2Table) Mul(e *G2, k *big.Int) *G2 {
	if e.p == nil {
		e.p = newTwistPoint()
	}
	tb.t.mul(e.p, k)
	return e
}
