package bn256

import (
	"fmt"
	"math/big"
)

// refGfP12 implements the field of size p¹² as a quadratic extension of refGfP6
// where ω² = τ. An element is x·ω + y.
type refGfP12 struct {
	x, y *refGfP6
}

func newRefGFp12() *refGfP12 {
	return &refGfP12{x: newRefGFp6(), y: newRefGFp6()}
}

func (e *refGfP12) String() string {
	return fmt.Sprintf("(%s, %s)", e.x, e.y)
}

func (e *refGfP12) Set(a *refGfP12) *refGfP12 {
	e.x.Set(a.x)
	e.y.Set(a.y)
	return e
}

func (e *refGfP12) SetZero() *refGfP12 {
	e.x.SetZero()
	e.y.SetZero()
	return e
}

func (e *refGfP12) SetOne() *refGfP12 {
	e.x.SetZero()
	e.y.SetOne()
	return e
}

func (e *refGfP12) Minimal() *refGfP12 {
	e.x.Minimal()
	e.y.Minimal()
	return e
}

func (e *refGfP12) IsZero() bool {
	return e.x.IsZero() && e.y.IsZero()
}

func (e *refGfP12) IsOne() bool {
	return e.x.IsZero() && e.y.IsOne()
}

func (e *refGfP12) Equal(a *refGfP12) bool {
	return e.x.Equal(a.x) && e.y.Equal(a.y)
}

// Conjugate sets e = ā, the image of a under the p⁶-power Frobenius
// (ω ↦ −ω). For elements of the cyclotomic subgroup — in particular all
// pairing values — the conjugate equals the inverse.
func (e *refGfP12) Conjugate(a *refGfP12) *refGfP12 {
	e.x.Neg(a.x)
	e.y.Set(a.y)
	return e
}

func (e *refGfP12) Neg(a *refGfP12) *refGfP12 {
	e.x.Neg(a.x)
	e.y.Neg(a.y)
	return e
}

func (e *refGfP12) Add(a, b *refGfP12) *refGfP12 {
	e.x.Add(a.x, b.x)
	e.y.Add(a.y, b.y)
	return e
}

func (e *refGfP12) Sub(a, b *refGfP12) *refGfP12 {
	e.x.Sub(a.x, b.x)
	e.y.Sub(a.y, b.y)
	return e
}

// Mul sets e = a·b by Karatsuba over refGfP6:
// (a.x·ω + a.y)(b.x·ω + b.y) = (a.x·b.y + a.y·b.x)·ω + (a.y·b.y + a.x·b.x·τ).
func (e *refGfP12) Mul(a, b *refGfP12) *refGfP12 {
	tx := newRefGFp6().Add(a.x, a.y)
	t := newRefGFp6().Add(b.x, b.y)
	tx.Mul(tx, t)

	v0 := newRefGFp6().Mul(a.y, b.y)
	v1 := newRefGFp6().Mul(a.x, b.x)

	tx.Sub(tx, v0)
	tx.Sub(tx, v1)

	ty := newRefGFp6().MulTau(v1)
	ty.Add(ty, v0)

	e.x.Set(tx)
	e.y.Set(ty)
	return e
}

func (e *refGfP12) MulScalar(a *refGfP12, b *refGfP6) *refGfP12 {
	tx := newRefGFp6().Mul(a.x, b)
	ty := newRefGFp6().Mul(a.y, b)
	e.x.Set(tx)
	e.y.Set(ty)
	return e
}

// MulLine sets e = a·L where L is the sparse line element
// L = c0 + c1·ω + c3·τω (c0 a base-field scalar, c1 and c3 in F_p²) —
// the shape produced by the pairing's line functions. It is equivalent to
// (and cross-checked in tests against) a general multiplication but costs
// roughly a third fewer base-field multiplications.
func (e *refGfP12) MulLine(a *refGfP12, c0 *big.Int, c1, c3 *refGfP2) *refGfP12 {
	// L = Lx·ω + Ly with Lx = c3·τ + c1 and Ly = c0.
	v0 := newRefGFp6().MulGFp(a.y, c0)         // a.y · Ly
	v1 := newRefGFp6().MulSparse2(a.x, c3, c1) // a.x · Lx

	// cross = (a.x + a.y)(Lx + Ly) − v0 − v1, Lx + Ly = c3·τ + (c1 + c0).
	z2 := newRefGFp2().Set(c1)
	z2.y.Add(z2.y, c0)
	z2.Minimal()
	t := newRefGFp6().Add(a.x, a.y)
	cross := newRefGFp6().MulSparse2(t, c3, z2)
	cross.Sub(cross, v0)
	cross.Sub(cross, v1)

	e.x.Set(cross)
	v1.MulTau(v1)
	e.y.Add(v0, v1)
	return e
}

// MulGFp sets e = a·b where b is a base-field element.
func (e *refGfP12) MulGFp(a *refGfP12, b *big.Int) *refGfP12 {
	e.x.MulGFp(a.x, b)
	e.y.MulGFp(a.y, b)
	return e
}

// Square sets e = a². Using (x·ω + y)² = 2xy·ω + (y² + x²τ) via the
// complex-squaring identity y² + x²τ = (x + y)(xτ + y) − xy·τ − xy.
func (e *refGfP12) Square(a *refGfP12) *refGfP12 {
	v0 := newRefGFp6().Mul(a.x, a.y)

	t := newRefGFp6().MulTau(a.x)
	t.Add(t, a.y)
	ty := newRefGFp6().Add(a.x, a.y)
	ty.Mul(ty, t)
	ty.Sub(ty, v0)
	t.MulTau(v0)
	ty.Sub(ty, t)

	e.y.Set(ty)
	e.x.Double(v0)
	return e
}

// Invert sets e = a⁻¹ using 1/(x·ω + y) = (−x·ω + y)/(y² − x²·τ).
func (e *refGfP12) Invert(a *refGfP12) *refGfP12 {
	t1 := newRefGFp6().Square(a.x)
	t1.MulTau(t1)
	t2 := newRefGFp6().Square(a.y)
	t2.Sub(t2, t1)
	t2.Invert(t2)

	e.x.Neg(a.x)
	e.y.Set(a.y)
	return e.MulScalar(e, t2)
}

// Exp sets e = a^k by square-and-multiply.
func (e *refGfP12) Exp(a *refGfP12, k *big.Int) *refGfP12 {
	sum := newRefGFp12().SetOne()
	t := newRefGFp12()
	base := newRefGFp12().Set(a)

	for i := k.BitLen() - 1; i >= 0; i-- {
		t.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(t, base)
		} else {
			sum.Set(t)
		}
	}
	return e.Set(sum)
}

// Frobenius sets e = a^p. With ω^p = ξ^((p−1)/6)·ω:
//
//	(x·ω + y)^p = x^p·ξ^((p−1)/6)·ω + y^p.
func (e *refGfP12) Frobenius(a *refGfP12) *refGfP12 {
	e.x.Frobenius(a.x)
	e.y.Frobenius(a.y)
	e.x.MulScalar(e.x, refXiToPMinus1Over6)
	return e
}

// FrobeniusP2 sets e = a^(p²), where ω^(p²) = ξ^((p²−1)/6)·ω with the
// factor in F_p.
func (e *refGfP12) FrobeniusP2(a *refGfP12) *refGfP12 {
	e.x.FrobeniusP2(a.x)
	e.y.FrobeniusP2(a.y)
	e.x.MulScalar(e.x, refXiToPSquaredMinus1Over6)
	return e
}
