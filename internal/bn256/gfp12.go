package bn256

import (
	"fmt"
	"math/big"
)

// gfP12 implements the field of size p¹² as a quadratic extension of gfP6
// where ω² = τ. An element is x·ω + y. The zero value is a valid 0.
type gfP12 struct {
	x, y gfP6
}

func newGFp12() *gfP12 {
	return &gfP12{}
}

func (e *gfP12) String() string {
	return fmt.Sprintf("(%s, %s)", &e.x, &e.y)
}

func (e *gfP12) Set(a *gfP12) *gfP12 {
	*e = *a
	return e
}

func (e *gfP12) SetZero() *gfP12 {
	*e = gfP12{}
	return e
}

func (e *gfP12) SetOne() *gfP12 {
	e.x.SetZero()
	e.y.SetOne()
	return e
}

// Minimal is the identity for the limb core (see gfP2.Minimal).
func (e *gfP12) Minimal() *gfP12 { return e }

func (e *gfP12) IsZero() bool {
	return e.x.IsZero() && e.y.IsZero()
}

func (e *gfP12) IsOne() bool {
	return e.x.IsZero() && e.y.IsOne()
}

func (e *gfP12) Equal(a *gfP12) bool {
	return e.x.Equal(&a.x) && e.y.Equal(&a.y)
}

// Conjugate sets e = ā, the image of a under the p⁶-power Frobenius
// (ω ↦ −ω). For elements of the cyclotomic subgroup — in particular all
// pairing values — the conjugate equals the inverse.
func (e *gfP12) Conjugate(a *gfP12) *gfP12 {
	e.x.Neg(&a.x)
	e.y.Set(&a.y)
	return e
}

func (e *gfP12) Neg(a *gfP12) *gfP12 {
	e.x.Neg(&a.x)
	e.y.Neg(&a.y)
	return e
}

func (e *gfP12) Add(a, b *gfP12) *gfP12 {
	e.x.Add(&a.x, &b.x)
	e.y.Add(&a.y, &b.y)
	return e
}

func (e *gfP12) Sub(a, b *gfP12) *gfP12 {
	e.x.Sub(&a.x, &b.x)
	e.y.Sub(&a.y, &b.y)
	return e
}

// Mul sets e = a·b by Karatsuba over gfP6:
// (a.x·ω + a.y)(b.x·ω + b.y) = (a.x·b.y + a.y·b.x)·ω + (a.y·b.y + a.x·b.x·τ).
func (e *gfP12) Mul(a, b *gfP12) *gfP12 {
	var tx, t, v0, v1, ty gfP6
	tx.Add(&a.x, &a.y)
	t.Add(&b.x, &b.y)
	tx.Mul(&tx, &t)

	v0.Mul(&a.y, &b.y)
	v1.Mul(&a.x, &b.x)

	tx.Sub(&tx, &v0)
	tx.Sub(&tx, &v1)

	ty.MulTau(&v1)
	ty.Add(&ty, &v0)

	e.x = tx
	e.y = ty
	return e
}

func (e *gfP12) MulScalar(a *gfP12, b *gfP6) *gfP12 {
	var tx, ty gfP6
	tx.Mul(&a.x, b)
	ty.Mul(&a.y, b)
	e.x = tx
	e.y = ty
	return e
}

// MulLine sets e = a·L where L is the sparse line element
// L = c0 + c1·ω + c3·τω (all three coefficients in F_p²) — the shape
// produced by the pairing's projective line functions. It is equivalent to
// (and cross-checked in tests against) a general multiplication but costs
// roughly a third fewer base-field multiplications.
func (e *gfP12) MulLine(a *gfP12, c0, c1, c3 *gfP2) *gfP12 {
	// L = Lx·ω + Ly with Lx = c3·τ + c1 and Ly = c0 (an F_p² scalar).
	var v0, v1, t, cross gfP6
	var z2 gfP2
	v0.MulScalar(&a.y, c0)      // a.y · Ly
	v1.MulSparse2(&a.x, c3, c1) // a.x · Lx

	// cross = (a.x + a.y)(Lx + Ly) − v0 − v1, Lx + Ly = c3·τ + (c1 + c0).
	z2.Add(c1, c0)
	t.Add(&a.x, &a.y)
	cross.MulSparse2(&t, c3, &z2)
	cross.Sub(&cross, &v0)
	cross.Sub(&cross, &v1)

	e.x = cross
	v1.MulTau(&v1)
	e.y.Add(&v0, &v1)
	return e
}

// MulGFp sets e = a·b where b is a base-field element.
func (e *gfP12) MulGFp(a *gfP12, b *gfP) *gfP12 {
	e.x.MulGFp(&a.x, b)
	e.y.MulGFp(&a.y, b)
	return e
}

// Square sets e = a². Using (x·ω + y)² = 2xy·ω + (y² + x²τ) via the
// complex-squaring identity y² + x²τ = (x + y)(xτ + y) − xy·τ − xy.
func (e *gfP12) Square(a *gfP12) *gfP12 {
	var v0, t, ty gfP6
	v0.Mul(&a.x, &a.y)

	t.MulTau(&a.x)
	t.Add(&t, &a.y)
	ty.Add(&a.x, &a.y)
	ty.Mul(&ty, &t)
	ty.Sub(&ty, &v0)
	t.MulTau(&v0)
	ty.Sub(&ty, &t)

	e.y = ty
	e.x.Double(&v0)
	return e
}

// Invert sets e = a⁻¹ using 1/(x·ω + y) = (−x·ω + y)/(y² − x²·τ).
func (e *gfP12) Invert(a *gfP12) *gfP12 {
	var t1, t2 gfP6
	t1.Square(&a.x)
	t1.MulTau(&t1)
	t2.Square(&a.y)
	t2.Sub(&t2, &t1)
	t2.Invert(&t2)

	e.x.Neg(&a.x)
	e.y.Set(&a.y)
	return e.MulScalar(e, &t2)
}

// Exp sets e = a^k by square-and-multiply.
func (e *gfP12) Exp(a *gfP12, k *big.Int) *gfP12 {
	sum := newGFp12().SetOne()
	base := newGFp12().Set(a)

	for i := k.BitLen() - 1; i >= 0; i-- {
		sum.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(sum, base)
		}
	}
	return e.Set(sum)
}

// Frobenius sets e = a^p. With ω^p = ξ^((p−1)/6)·ω:
//
//	(x·ω + y)^p = x^p·ξ^((p−1)/6)·ω + y^p.
func (e *gfP12) Frobenius(a *gfP12) *gfP12 {
	e.x.Frobenius(&a.x)
	e.y.Frobenius(&a.y)
	e.x.MulScalar(&e.x, xiToPMinus1Over6)
	return e
}

// FrobeniusP2 sets e = a^(p²), where ω^(p²) = ξ^((p²−1)/6)·ω with the
// factor in F_p.
func (e *gfP12) FrobeniusP2(a *gfP12) *gfP12 {
	e.x.FrobeniusP2(&a.x)
	e.y.FrobeniusP2(&a.y)
	e.x.MulScalar(&e.x, xiToPSquaredMinus1Over6)
	return e
}
