package bn256

import (
	"fmt"
	"math/big"
)

// curvePoint implements the elliptic curve E: y² = x³ + 3 over F_p in
// Jacobian projective coordinates: (x, y, z) represents the affine point
// (x/z², y/z³). The point at infinity has z = 0. The t field caches z²
// during mixed operations (kept for parity with classic implementations;
// it always mirrors z² when set via MakeAffine).
type curvePoint struct {
	x, y, z, t *big.Int
}

func newCurvePoint() *curvePoint {
	return &curvePoint{
		x: new(big.Int),
		y: new(big.Int),
		z: new(big.Int),
		t: new(big.Int),
	}
}

func (c *curvePoint) String() string {
	c.MakeAffine()
	return fmt.Sprintf("(%s, %s)", c.x.String(), c.y.String())
}

func (c *curvePoint) Set(a *curvePoint) *curvePoint {
	c.x.Set(a.x)
	c.y.Set(a.y)
	c.z.Set(a.z)
	c.t.Set(a.t)
	return c
}

// SetInfinity sets c to the point at infinity.
func (c *curvePoint) SetInfinity() *curvePoint {
	c.x.SetInt64(1)
	c.y.SetInt64(1)
	c.z.SetInt64(0)
	c.t.SetInt64(0)
	return c
}

func (c *curvePoint) IsInfinity() bool {
	return c.z.Sign() == 0
}

// IsOnCurve reports whether the affine form of c satisfies y² = x³ + 3.
// The point at infinity is considered on the curve.
func (c *curvePoint) IsOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	c.MakeAffine()
	yy := new(big.Int).Mul(c.y, c.y)
	xxx := new(big.Int).Mul(c.x, c.x)
	xxx.Mul(xxx, c.x)
	yy.Sub(yy, xxx)
	yy.Sub(yy, curveB)
	yy.Mod(yy, P)
	return yy.Sign() == 0
}

func (c *curvePoint) Equal(a *curvePoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	// Compare cross-multiplied coordinates to avoid affine conversion:
	// x1·z2² == x2·z1² and y1·z2³ == y2·z1³.
	z1z1 := new(big.Int).Mul(c.z, c.z)
	z1z1.Mod(z1z1, P)
	z2z2 := new(big.Int).Mul(a.z, a.z)
	z2z2.Mod(z2z2, P)

	l := new(big.Int).Mul(c.x, z2z2)
	l.Mod(l, P)
	r := new(big.Int).Mul(a.x, z1z1)
	r.Mod(r, P)
	if l.Cmp(r) != 0 {
		return false
	}

	z1z1.Mul(z1z1, c.z)
	z1z1.Mod(z1z1, P)
	z2z2.Mul(z2z2, a.z)
	z2z2.Mod(z2z2, P)

	l.Mul(c.y, z2z2)
	l.Mod(l, P)
	r.Mul(a.y, z1z1)
	r.Mod(r, P)
	return l.Cmp(r) == 0
}

// Add sets c = a + b using the add-2007-bl Jacobian formulas, falling back
// to Double when a == b.
func (c *curvePoint) Add(a, b *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}

	z1z1 := new(big.Int).Mul(a.z, a.z)
	z1z1.Mod(z1z1, P)
	z2z2 := new(big.Int).Mul(b.z, b.z)
	z2z2.Mod(z2z2, P)

	u1 := new(big.Int).Mul(a.x, z2z2)
	u1.Mod(u1, P)
	u2 := new(big.Int).Mul(b.x, z1z1)
	u2.Mod(u2, P)

	s1 := new(big.Int).Mul(a.y, b.z)
	s1.Mul(s1, z2z2)
	s1.Mod(s1, P)
	s2 := new(big.Int).Mul(b.y, a.z)
	s2.Mul(s2, z1z1)
	s2.Mod(s2, P)

	h := new(big.Int).Sub(u2, u1)
	h.Mod(h, P)
	r := new(big.Int).Sub(s2, s1)
	r.Mod(r, P)

	if h.Sign() == 0 {
		if r.Sign() == 0 {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	r.Lsh(r, 1)

	i := new(big.Int).Lsh(h, 1)
	i.Mul(i, i)
	i.Mod(i, P)
	j := new(big.Int).Mul(h, i)
	j.Mod(j, P)

	v := new(big.Int).Mul(u1, i)
	v.Mod(v, P)

	x3 := new(big.Int).Mul(r, r)
	x3.Sub(x3, j)
	x3.Sub(x3, v)
	x3.Sub(x3, v)
	x3.Mod(x3, P)

	y3 := new(big.Int).Sub(v, x3)
	y3.Mul(y3, r)
	t := new(big.Int).Mul(s1, j)
	t.Lsh(t, 1)
	y3.Sub(y3, t)
	y3.Mod(y3, P)

	z3 := new(big.Int).Add(a.z, b.z)
	z3.Mul(z3, z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)
	z3.Mod(z3, P)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Double sets c = 2a using the dbl-2009-l Jacobian formulas.
func (c *curvePoint) Double(a *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}

	aa := new(big.Int).Mul(a.x, a.x)
	aa.Mod(aa, P)
	bb := new(big.Int).Mul(a.y, a.y)
	bb.Mod(bb, P)
	cc := new(big.Int).Mul(bb, bb)
	cc.Mod(cc, P)

	d := new(big.Int).Add(a.x, bb)
	d.Mul(d, d)
	d.Sub(d, aa)
	d.Sub(d, cc)
	d.Lsh(d, 1)
	d.Mod(d, P)

	e := new(big.Int).Lsh(aa, 1)
	e.Add(e, aa)
	f := new(big.Int).Mul(e, e)
	f.Mod(f, P)

	x3 := new(big.Int).Sub(f, new(big.Int).Lsh(d, 1))
	x3.Mod(x3, P)

	y3 := new(big.Int).Sub(d, x3)
	y3.Mul(y3, e)
	t := new(big.Int).Lsh(cc, 3)
	y3.Sub(y3, t)
	y3.Mod(y3, P)

	z3 := new(big.Int).Mul(a.y, a.z)
	z3.Lsh(z3, 1)
	z3.Mod(z3, P)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Mul sets c = k·a using a fixed 4-bit window (≈25% fewer additions than
// plain double-and-add for 256-bit scalars). mulGeneric remains as the
// cross-check reference for tests.
func (c *curvePoint) Mul(a *curvePoint, k *big.Int) *curvePoint {
	if k.Sign() < 0 {
		neg := newCurvePoint().Negative(a)
		kAbs := new(big.Int).Neg(k)
		return c.Mul(neg, kAbs)
	}
	if k.BitLen() <= 16 {
		return c.mulGeneric(a, k)
	}

	// table[i] = i·a for i in 1..15.
	var table [16]*curvePoint
	table[1] = newCurvePoint().Set(a)
	for i := 2; i < 16; i++ {
		table[i] = newCurvePoint().Add(table[i-1], a)
	}

	sum := newCurvePoint().SetInfinity()
	bits := k.BitLen()
	// Round the starting position up to a window boundary.
	start := ((bits + 3) / 4) * 4
	for pos := start - 4; pos >= 0; pos -= 4 {
		for d := 0; d < 4; d++ {
			sum.Double(sum)
		}
		nibble := (k.Bit(pos+3) << 3) | (k.Bit(pos+2) << 2) | (k.Bit(pos+1) << 1) | k.Bit(pos)
		if nibble != 0 {
			sum.Add(sum, table[nibble])
		}
	}
	return c.Set(sum)
}

// mulGeneric is the textbook double-and-add ladder.
func (c *curvePoint) mulGeneric(a *curvePoint, k *big.Int) *curvePoint {
	sum := newCurvePoint().SetInfinity()
	t := newCurvePoint()
	for i := k.BitLen(); i >= 0; i-- {
		t.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(t, a)
		} else {
			sum.Set(t)
		}
	}
	return c.Set(sum)
}

func (c *curvePoint) Negative(a *curvePoint) *curvePoint {
	c.x.Set(a.x)
	c.y.Neg(a.y)
	c.y.Mod(c.y, P)
	c.z.Set(a.z)
	c.t.SetInt64(0)
	return c
}

// MakeAffine normalizes c to z = 1 (or the canonical infinity encoding).
func (c *curvePoint) MakeAffine() *curvePoint {
	if c.z.Sign() == 0 {
		return c.SetInfinity()
	}
	one := big.NewInt(1)
	if c.z.Cmp(one) == 0 && c.x.Sign() >= 0 && c.x.Cmp(P) < 0 &&
		c.y.Sign() >= 0 && c.y.Cmp(P) < 0 {
		c.t.Set(one)
		return c
	}

	zInv := new(big.Int).ModInverse(c.z, P)
	t := new(big.Int).Mul(c.y, zInv)
	t.Mod(t, P)
	zInv2 := new(big.Int).Mul(zInv, zInv)
	zInv2.Mod(zInv2, P)

	c.y.Mul(t, zInv2)
	c.y.Mod(c.y, P)
	t.Mul(c.x, zInv2)
	t.Mod(t, P)
	c.x.Set(t)
	c.z.SetInt64(1)
	c.t.SetInt64(1)
	return c
}
