package bn256

import (
	"fmt"
	"math/big"
)

// curvePoint implements the elliptic curve E: y² = x³ + 3 over F_p in
// Jacobian projective coordinates: (x, y, z) represents the affine point
// (x/z², y/z³). The point at infinity has z = 0. The t field caches z²
// during mixed operations (kept for parity with classic implementations;
// it always mirrors z² when set via MakeAffine). Coordinates are gfP limb
// values in Montgomery form.
type curvePoint struct {
	x, y, z, t gfP
}

func newCurvePoint() *curvePoint {
	return &curvePoint{}
}

func (c *curvePoint) String() string {
	c.MakeAffine()
	return fmt.Sprintf("(%s, %s)", c.x.String(), c.y.String())
}

func (c *curvePoint) Set(a *curvePoint) *curvePoint {
	*c = *a
	return c
}

// SetInfinity sets c to the point at infinity.
func (c *curvePoint) SetInfinity() *curvePoint {
	c.x.SetOne()
	c.y.SetOne()
	c.z.SetZero()
	c.t.SetZero()
	return c
}

func (c *curvePoint) IsInfinity() bool {
	return c.z.IsZero()
}

// IsOnCurve reports whether the affine form of c satisfies y² = x³ + 3.
// The point at infinity is considered on the curve.
func (c *curvePoint) IsOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	c.MakeAffine()
	var yy, xxx gfP
	gfpMul(&yy, &c.y, &c.y)
	gfpMul(&xxx, &c.x, &c.x)
	gfpMul(&xxx, &xxx, &c.x)
	gfpSub(&yy, &yy, &xxx)
	gfpSub(&yy, &yy, &curveBGfP)
	return yy.IsZero()
}

func (c *curvePoint) Equal(a *curvePoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	// Compare cross-multiplied coordinates to avoid affine conversion:
	// x1·z2² == x2·z1² and y1·z2³ == y2·z1³.
	var z1z1, z2z2, l, r gfP
	gfpMul(&z1z1, &c.z, &c.z)
	gfpMul(&z2z2, &a.z, &a.z)

	gfpMul(&l, &c.x, &z2z2)
	gfpMul(&r, &a.x, &z1z1)
	if !l.Equal(&r) {
		return false
	}

	gfpMul(&z1z1, &z1z1, &c.z)
	gfpMul(&z2z2, &z2z2, &a.z)
	gfpMul(&l, &c.y, &z2z2)
	gfpMul(&r, &a.y, &z1z1)
	return l.Equal(&r)
}

// Add sets c = a + b using the add-2007-bl Jacobian formulas, falling back
// to Double when a == b.
func (c *curvePoint) Add(a, b *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}

	var z1z1, z2z2, u1, u2, s1, s2, h, r gfP
	gfpMul(&z1z1, &a.z, &a.z)
	gfpMul(&z2z2, &b.z, &b.z)

	gfpMul(&u1, &a.x, &z2z2)
	gfpMul(&u2, &b.x, &z1z1)

	gfpMul(&s1, &a.y, &b.z)
	gfpMul(&s1, &s1, &z2z2)
	gfpMul(&s2, &b.y, &a.z)
	gfpMul(&s2, &s2, &z1z1)

	gfpSub(&h, &u2, &u1)
	gfpSub(&r, &s2, &s1)

	if h.IsZero() {
		if r.IsZero() {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	gfpDouble(&r, &r)

	var i, j, v, x3, y3, z3, t gfP
	gfpDouble(&i, &h)
	gfpMul(&i, &i, &i)
	gfpMul(&j, &h, &i)

	gfpMul(&v, &u1, &i)

	gfpMul(&x3, &r, &r)
	gfpSub(&x3, &x3, &j)
	gfpSub(&x3, &x3, &v)
	gfpSub(&x3, &x3, &v)

	gfpSub(&y3, &v, &x3)
	gfpMul(&y3, &y3, &r)
	gfpMul(&t, &s1, &j)
	gfpDouble(&t, &t)
	gfpSub(&y3, &y3, &t)

	gfpAdd(&z3, &a.z, &b.z)
	gfpMul(&z3, &z3, &z3)
	gfpSub(&z3, &z3, &z1z1)
	gfpSub(&z3, &z3, &z2z2)
	gfpMul(&z3, &z3, &h)

	c.x = x3
	c.y = y3
	c.z = z3
	return c
}

// Double sets c = 2a using the dbl-2009-l Jacobian formulas.
func (c *curvePoint) Double(a *curvePoint) *curvePoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}

	var aa, bb, cc, d, e, f, x3, y3, z3, t gfP
	gfpMul(&aa, &a.x, &a.x)
	gfpMul(&bb, &a.y, &a.y)
	gfpMul(&cc, &bb, &bb)

	gfpAdd(&d, &a.x, &bb)
	gfpMul(&d, &d, &d)
	gfpSub(&d, &d, &aa)
	gfpSub(&d, &d, &cc)
	gfpDouble(&d, &d)

	gfpDouble(&e, &aa)
	gfpAdd(&e, &e, &aa)
	gfpMul(&f, &e, &e)

	gfpDouble(&x3, &d)
	gfpSub(&x3, &f, &x3)

	gfpSub(&y3, &d, &x3)
	gfpMul(&y3, &y3, &e)
	gfpDouble(&t, &cc)
	gfpDouble(&t, &t)
	gfpDouble(&t, &t)
	gfpSub(&y3, &y3, &t)

	gfpMul(&z3, &a.y, &a.z)
	gfpDouble(&z3, &z3)

	c.x = x3
	c.y = y3
	c.z = z3
	return c
}

// wnafDigits expands k > 0 into width-w non-adjacent form: a little-endian
// digit string where every non-zero digit is odd, |digit| < 2^(w−1), and
// any two non-zero digits are separated by at least w−1 zeros. Compared to
// a fixed window this roughly halves the precomputation (only odd
// multiples are needed) and cuts the expected addition count to one per
// w+1 bits. Shared by the limb and reference cores.
func wnafDigits(k *big.Int, w uint) []int8 {
	d := new(big.Int).Set(k)
	mask := int64(1<<w - 1)
	half := int64(1 << (w - 1))
	out := make([]int8, 0, d.BitLen()+1)
	tmp := new(big.Int)
	for d.Sign() > 0 {
		if d.Bit(0) == 1 {
			v := tmp.And(d, big.NewInt(mask)).Int64()
			if v >= half {
				v -= mask + 1
			}
			out = append(out, int8(v))
			d.Sub(d, tmp.SetInt64(v))
		} else {
			out = append(out, 0)
		}
		d.Rsh(d, 1)
	}
	return out
}

// Mul sets c = k·a. Long scalars (beyond half the order's bit length) go
// through the GLV endomorphism split in mulGLV — E(F_p) has prime order,
// so the decomposition is valid for every point and every k. Short scalars
// use width-5 wNAF (odd-multiple table of 8 points, one addition per ~6
// bits). mulGeneric remains as the cross-check reference for tests.
func (c *curvePoint) Mul(a *curvePoint, k *big.Int) *curvePoint {
	if k.Sign() < 0 {
		neg := newCurvePoint().Negative(a)
		kAbs := new(big.Int).Neg(k)
		return c.Mul(neg, kAbs)
	}
	if k.BitLen() <= 16 {
		return c.mulGeneric(a, k)
	}
	if k.BitLen() > Order.BitLen()/2+8 {
		return c.mulGLV(a, k)
	}

	// odd[i] = (2i+1)·a for i in 0..7.
	var odd [8]*curvePoint
	odd[0] = newCurvePoint().Set(a)
	twoA := newCurvePoint().Double(a)
	for i := 1; i < 8; i++ {
		odd[i] = newCurvePoint().Add(odd[i-1], twoA)
	}
	neg := newCurvePoint()

	digits := wnafDigits(k, 5)
	sum := newCurvePoint().SetInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		sum.Double(sum)
		switch d := digits[i]; {
		case d > 0:
			sum.Add(sum, odd[(d-1)/2])
		case d < 0:
			sum.Add(sum, neg.Negative(odd[(-d-1)/2]))
		}
	}
	return c.Set(sum)
}

// mulGeneric is the textbook double-and-add ladder.
func (c *curvePoint) mulGeneric(a *curvePoint, k *big.Int) *curvePoint {
	sum := newCurvePoint().SetInfinity()
	t := newCurvePoint()
	for i := k.BitLen(); i >= 0; i-- {
		t.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(t, a)
		} else {
			sum.Set(t)
		}
	}
	return c.Set(sum)
}

func (c *curvePoint) Negative(a *curvePoint) *curvePoint {
	c.x = a.x
	gfpNeg(&c.y, &a.y)
	c.z = a.z
	c.t.SetZero()
	return c
}

// MakeAffine normalizes c to z = 1 (or the canonical infinity encoding).
func (c *curvePoint) MakeAffine() *curvePoint {
	if c.z.IsZero() {
		return c.SetInfinity()
	}
	if c.z.Equal(&rOne) {
		c.t.SetOne()
		return c
	}

	var zInv, zInv2, t gfP
	zInv.Invert(&c.z)
	gfpMul(&t, &c.y, &zInv)
	gfpMul(&zInv2, &zInv, &zInv)

	gfpMul(&c.y, &t, &zInv2)
	gfpMul(&t, &c.x, &zInv2)
	c.x = t
	c.z.SetOne()
	c.t.SetOne()
	return c
}
