package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestCurvePointGroupLaws(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)
	pa := newCurvePoint().Mul(curveGen, a)
	pb := newCurvePoint().Mul(curveGen, b)

	// Commutativity.
	ab := newCurvePoint().Add(pa, pb)
	ba := newCurvePoint().Add(pb, pa)
	if !ab.Equal(ba) {
		t.Fatal("curve addition not commutative")
	}

	// Identity element.
	inf := newCurvePoint().SetInfinity()
	if !newCurvePoint().Add(pa, inf).Equal(pa) {
		t.Fatal("P + O != P")
	}
	if !newCurvePoint().Add(inf, pa).Equal(pa) {
		t.Fatal("O + P != P")
	}

	// Inverse.
	neg := newCurvePoint().Negative(pa)
	if !newCurvePoint().Add(pa, neg).IsInfinity() {
		t.Fatal("P + (−P) != O")
	}

	// Doubling consistency: P + P == 2P.
	dbl := newCurvePoint().Double(pa)
	sum := newCurvePoint().Add(pa, pa)
	if !dbl.Equal(sum) {
		t.Fatal("Add(P,P) != Double(P)")
	}

	// Results stay on the curve.
	if !ab.IsOnCurve() || !dbl.IsOnCurve() {
		t.Fatal("group law left the curve")
	}
}

func TestCurvePointScalarEdgeCases(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	pa := newCurvePoint().Mul(curveGen, a)

	if !newCurvePoint().Mul(pa, big.NewInt(0)).IsInfinity() {
		t.Fatal("0·P != O")
	}
	if !newCurvePoint().Mul(pa, big.NewInt(1)).Equal(pa) {
		t.Fatal("1·P != P")
	}
	if !newCurvePoint().Mul(pa, Order).IsInfinity() {
		t.Fatal("n·P != O")
	}
	// (n−1)·P == −P.
	nm1 := new(big.Int).Sub(Order, big.NewInt(1))
	neg := newCurvePoint().Negative(pa)
	if !newCurvePoint().Mul(pa, nm1).Equal(neg) {
		t.Fatal("(n−1)·P != −P")
	}
	// Negative scalar: (−1)·P == −P.
	if !newCurvePoint().Mul(pa, big.NewInt(-1)).Equal(neg) {
		t.Fatal("(−1)·P != −P")
	}
}

func TestTwistPointGroupLaws(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)
	pa := newTwistPoint().Mul(twistGen, a)
	pb := newTwistPoint().Mul(twistGen, b)

	ab := newTwistPoint().Add(pa, pb)
	ba := newTwistPoint().Add(pb, pa)
	if !ab.Equal(ba) {
		t.Fatal("twist addition not commutative")
	}

	inf := newTwistPoint().SetInfinity()
	if !newTwistPoint().Add(pa, inf).Equal(pa) {
		t.Fatal("Q + O != Q")
	}

	neg := newTwistPoint().Negative(pa)
	if !newTwistPoint().Add(pa, neg).IsInfinity() {
		t.Fatal("Q + (−Q) != O")
	}

	dbl := newTwistPoint().Double(pa)
	sum := newTwistPoint().Add(pa, pa)
	if !dbl.Equal(sum) {
		t.Fatal("Add(Q,Q) != Double(Q)")
	}
	if !ab.IsOnCurve() {
		t.Fatal("twist group law left the subgroup")
	}
}

func TestScalarMultDistributesOverAdd(t *testing.T) {
	// k(P + Q) == kP + kQ on both curves.
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)
	k, _ := RandomScalar(rand.Reader)

	pa := newCurvePoint().Mul(curveGen, a)
	pb := newCurvePoint().Mul(curveGen, b)
	l := newCurvePoint().Add(pa, pb)
	l.Mul(l, k)
	r := newCurvePoint().Add(newCurvePoint().Mul(pa, k), newCurvePoint().Mul(pb, k))
	if !l.Equal(r) {
		t.Fatal("G1: k(P+Q) != kP + kQ")
	}

	qa := newTwistPoint().Mul(twistGen, a)
	qb := newTwistPoint().Mul(twistGen, b)
	l2 := newTwistPoint().Add(qa, qb)
	l2.Mul(l2, k)
	r2 := newTwistPoint().Add(newTwistPoint().Mul(qa, k), newTwistPoint().Mul(qb, k))
	if !l2.Equal(r2) {
		t.Fatal("G2: k(P+Q) != kP + kQ")
	}
}

func TestMakeAffineIdempotent(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	p1 := newCurvePoint().Mul(curveGen, a)
	p2 := newCurvePoint().Set(p1)
	p1.MakeAffine()
	p1.MakeAffine()
	if !p1.Equal(p2) {
		t.Fatal("MakeAffine changed the point")
	}

	inf := newCurvePoint().SetInfinity()
	inf.MakeAffine()
	if !inf.IsInfinity() {
		t.Fatal("MakeAffine broke infinity")
	}
}

func TestMixedAdditionAgainstDistinctZ(t *testing.T) {
	// Add points with different (non-one) Z coordinates: exercise the
	// full Jacobian path by comparing against affine-normalized inputs.
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)

	// Build pa with non-trivial Z by doubling (Double leaves Z != 1).
	pa := newCurvePoint().Mul(curveGen, a)
	pa.Double(pa)
	pb := newCurvePoint().Mul(curveGen, b)
	pb.Double(pb)

	sum1 := newCurvePoint().Add(pa, pb)

	paAff := newCurvePoint().Set(pa)
	paAff.MakeAffine()
	pbAff := newCurvePoint().Set(pb)
	pbAff.MakeAffine()
	sum2 := newCurvePoint().Add(paAff, pbAff)

	if !sum1.Equal(sum2) {
		t.Fatal("Jacobian addition disagrees with affine-input addition")
	}
}

func TestGTIdentityMarshal(t *testing.T) {
	one := new(GT).SetOne()
	back, err := new(GT).Unmarshal(one.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsOne() {
		t.Fatal("GT identity round-trip failed")
	}
}

func TestWindowedMulMatchesGeneric(t *testing.T) {
	for i := 0; i < 10; i++ {
		k, _ := RandomScalar(rand.Reader)
		a, _ := RandomScalar(rand.Reader)
		base := newCurvePoint().mulGeneric(curveGen, a)

		fast := newCurvePoint().Mul(base, k)
		slow := newCurvePoint().mulGeneric(base, k)
		if !fast.Equal(slow) {
			t.Fatalf("G1 windowed mul mismatch at iteration %d", i)
		}

		tbase := newTwistPoint().mulGeneric(twistGen, a)
		tfast := newTwistPoint().Mul(tbase, k)
		tslow := newTwistPoint().mulGeneric(tbase, k)
		if !tfast.Equal(tslow) {
			t.Fatalf("G2 windowed mul mismatch at iteration %d", i)
		}
	}
	// Boundary scalars.
	for _, k := range []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(15), big.NewInt(16),
		big.NewInt(65535), big.NewInt(65536),
		new(big.Int).Sub(Order, big.NewInt(1)), Order,
	} {
		fast := newCurvePoint().Mul(curveGen, k)
		slow := newCurvePoint().mulGeneric(curveGen, k)
		if !fast.Equal(slow) {
			t.Fatalf("G1 windowed mul mismatch for k=%v", k)
		}
	}
}
