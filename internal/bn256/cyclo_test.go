package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

// randomCyclotomic returns a random element of the cyclotomic subgroup by
// pushing a random field element through the easy part of the final
// exponentiation.
func randomCyclotomic(t *testing.T) *gfP12 {
	t.Helper()
	k1, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	g1 := new(G1).ScalarBaseMult(k1)
	g2 := new(G2).ScalarBaseMult(k2)
	return finalExponentiationEasy(miller(g2.p, g1.p))
}

func TestCyclotomicSquareMatchesSquare(t *testing.T) {
	a := randomCyclotomic(t)
	want := newGFp12().Square(a)
	got := newGFp12().CyclotomicSquare(a)
	if !got.Minimal().Equal(want.Minimal()) {
		t.Fatal("CyclotomicSquare disagrees with generic Square on a cyclotomic element")
	}

	// In-place aliasing.
	aliased := newGFp12().Set(a)
	aliased.CyclotomicSquare(aliased)
	if !aliased.Minimal().Equal(want) {
		t.Fatal("in-place CyclotomicSquare disagrees")
	}

	one := newGFp12().SetOne()
	if !newGFp12().CyclotomicSquare(one).Minimal().IsOne() {
		t.Fatal("CyclotomicSquare(1) != 1")
	}
}

func TestCyclotomicExpMatchesExp(t *testing.T) {
	a := randomCyclotomic(t)
	for _, k := range []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(3),
		new(big.Int).Set(u),
		new(big.Int).Sub(Order, big.NewInt(1)),
	} {
		want := newGFp12().Exp(a, k).Minimal()
		got := newGFp12().cyclotomicExp(a, k).Minimal()
		if !got.Equal(want) {
			t.Fatalf("cyclotomicExp(a, %v) disagrees with Exp", k)
		}
	}
}

func TestNAFDigits(t *testing.T) {
	for _, k := range []int64{0, 1, 2, 3, 7, 255, 1 << 20, 123456789} {
		digits := nafDigits(big.NewInt(k))
		// Recompose MSB-first: digits are stored LSB-first.
		acc := big.NewInt(0)
		for i := len(digits) - 1; i >= 0; i-- {
			acc.Lsh(acc, 1)
			acc.Add(acc, big.NewInt(int64(digits[i])))
			if i > 0 && digits[i] != 0 && digits[i-1] != 0 {
				t.Fatalf("k=%d: adjacent non-zero NAF digits", k)
			}
		}
		if acc.Int64() != k {
			t.Fatalf("k=%d: NAF recomposes to %v", k, acc)
		}
	}
}

func BenchmarkCyclotomicSquare(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	g1 := new(G1).ScalarBaseMult(k)
	a := finalExponentiationEasy(miller(new(G2).Base().p, g1.p))
	out := newGFp12()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.CyclotomicSquare(a)
	}
}
