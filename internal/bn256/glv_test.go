package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestGLVConstants(t *testing.T) {
	g := glv()
	// β³ = 1 in F_p, β ≠ 1.
	b3 := new(big.Int).Exp(g.beta, big.NewInt(3), P)
	if b3.Cmp(big.NewInt(1)) != 0 || g.beta.Cmp(big.NewInt(1)) == 0 {
		t.Fatal("beta is not a primitive cube root of unity")
	}
	// λ² + λ + 1 ≡ 0 mod n.
	l := new(big.Int).Mul(g.lambda, g.lambda)
	l.Add(l, g.lambda)
	l.Add(l, big.NewInt(1))
	if l.Mod(l, Order).Sign() != 0 {
		t.Fatal("lambda is not a primitive cube root of unity mod Order")
	}
	// Basis rows lie in the lattice: a + b·λ ≡ 0 mod n.
	for _, row := range [][2]*big.Int{{g.a1, g.b1}, {g.a2, g.b2}} {
		v := new(big.Int).Mul(row[1], g.lambda)
		v.Add(v, row[0])
		if v.Mod(v, Order).Sign() != 0 {
			t.Fatalf("basis row (%v, %v) not in the GLV lattice", row[0], row[1])
		}
	}
}

func TestGLVDecompose(t *testing.T) {
	g := glv()
	// Sub-scalars must stay near √n: allow a few bits of slack over half
	// the order's length.
	maxBits := Order.BitLen()/2 + 4
	for i := 0; i < 50; i++ {
		k, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		k1, k2 := glvDecompose(k)
		if k1.BitLen() > maxBits || k2.BitLen() > maxBits {
			t.Fatalf("decomposition too long: |k1|=%d |k2|=%d bits", k1.BitLen(), k2.BitLen())
		}
		// k1 + k2·λ ≡ k mod n.
		v := new(big.Int).Mul(k2, g.lambda)
		v.Add(v, k1)
		v.Mod(v, Order)
		if v.Cmp(k) != 0 {
			t.Fatalf("decomposition does not recompose: k=%v", k)
		}
	}
}

func TestMulGLVMatchesGeneric(t *testing.T) {
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	p := newCurvePoint().mulGeneric(curveGen, k)

	scalars := []*big.Int{
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Sub(Order, big.NewInt(2)),
		new(big.Int).Add(Order, big.NewInt(12345)), // unreduced input
	}
	for i := 0; i < 20; i++ {
		s, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		scalars = append(scalars, s)
	}
	for _, s := range scalars {
		want := newCurvePoint().mulGeneric(p, s)
		got := newCurvePoint().mulGLV(p, s)
		if !got.Equal(want) {
			t.Fatalf("mulGLV(%v) disagrees with mulGeneric", s)
		}
	}
}

func BenchmarkG1MulGLV(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	p := newCurvePoint().mulGeneric(curveGen, k)
	s, _ := RandomScalar(rand.Reader)
	out := newCurvePoint()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.mulGLV(p, s)
	}
}
