package bn256

import "math/big"

// Constants for the retained big.Int reference core (ref_*.go). They mirror
// the limb core's constants exactly: the shared big.Int parameters (u, P,
// Order, ateLoopCount, curveB) live in constants.go, and the generators are
// converted from the limb core so both cores agree on every canonical point
// by construction — the differential tests then verify the arithmetic on
// top of them.

// refXi is ξ = i + 3 ∈ F_p² in reference representation.
var refXi = &refGfP2{x: big.NewInt(1), y: big.NewInt(3)}

// refTwistB = 3/ξ, the constant of the sextic twist.
var refTwistB = computeRefTwistB()

func computeRefTwistB() *refGfP2 {
	inv := newRefGFp2().Invert(refXi)
	return inv.MulScalar(inv, curveB).Minimal()
}

// Frobenius twist factors ξ^((p^power−1)/div) for the reference tower.
var (
	refXiToPMinus1Over6 = refFrobConst(6, 1)
	refXiToPMinus1Over3 = refFrobConst(3, 1)
	refXiToPMinus1Over2 = refFrobConst(2, 1)

	refXiToPSquaredMinus1Over6 = refFrobConst(6, 2)
	refXiToPSquaredMinus1Over3 = refFrobConst(3, 2)
	refXiToPSquaredMinus1Over2 = refFrobConst(2, 2)
)

func refFrobConst(div int64, power int) *refGfP2 {
	pk := new(big.Int).Exp(P, big.NewInt(int64(power)), nil)
	e := new(big.Int).Sub(pk, big.NewInt(1))
	e.Div(e, big.NewInt(div))
	return newRefGFp2().Exp(refXi, e)
}

// refCurveGen is the canonical generator of G1: the point (1, 2).
var refCurveGen = &refCurvePoint{
	x: big.NewInt(1),
	y: big.NewInt(2),
	z: big.NewInt(1),
	t: big.NewInt(1),
}

// refTwistGen is the limb core's G2 generator converted to reference form;
// converting avoids re-running cofactor clearing on the slow core and pins
// both cores to the same point.
var refTwistGen = refTwistPointFromLimb(twistGen)

// Conversions between the limb core and the reference core, used by the
// differential tests and the field-core benchmark comparison.

func refGfP2FromLimb(a *gfP2) *refGfP2 {
	x, y := a.BigInts()
	return &refGfP2{x: x, y: y}
}

func gfP2FromRef(a *refGfP2) *gfP2 {
	b := newRefGFp2().Set(a).Minimal()
	return gfP2FromBigs(b.x, b.y)
}

func refTwistPointFromLimb(a *twistPoint) *refTwistPoint {
	aa := newTwistPoint().Set(a)
	if aa.IsInfinity() {
		return newRefTwistPoint().SetInfinity()
	}
	aa.MakeAffine()
	out := newRefTwistPoint()
	out.x = refGfP2FromLimb(&aa.x)
	out.y = refGfP2FromLimb(&aa.y)
	out.z.SetOne()
	out.t.SetOne()
	return out
}

func twistPointFromRef(a *refTwistPoint) *twistPoint {
	ra := newRefTwistPoint().Set(a)
	if ra.IsInfinity() {
		return newTwistPoint().SetInfinity()
	}
	ra.MakeAffine()
	out := newTwistPoint()
	out.x.Set(gfP2FromRef(ra.x))
	out.y.Set(gfP2FromRef(ra.y))
	out.z.SetOne()
	out.t.SetOne()
	return out
}

func refCurvePointFromLimb(a *curvePoint) *refCurvePoint {
	aa := newCurvePoint().Set(a)
	if aa.IsInfinity() {
		return newRefCurvePoint().SetInfinity()
	}
	aa.MakeAffine()
	out := newRefCurvePoint()
	out.x.Set(aa.x.BigInt())
	out.y.Set(aa.y.BigInt())
	out.z.SetInt64(1)
	out.t.SetInt64(1)
	return out
}

func curvePointFromRef(a *refCurvePoint) *curvePoint {
	ra := newRefCurvePoint().Set(a)
	if ra.IsInfinity() {
		return newCurvePoint().SetInfinity()
	}
	ra.MakeAffine()
	out := newCurvePoint()
	out.x = gfPFromBig(ra.x)
	out.y = gfPFromBig(ra.y)
	out.z.SetOne()
	out.t.SetOne()
	return out
}

func refGfP12FromLimb(a *gfP12) *refGfP12 {
	out := newRefGFp12()
	out.x.x.Set(refGfP2FromLimb(&a.x.x))
	out.x.y.Set(refGfP2FromLimb(&a.x.y))
	out.x.z.Set(refGfP2FromLimb(&a.x.z))
	out.y.x.Set(refGfP2FromLimb(&a.y.x))
	out.y.y.Set(refGfP2FromLimb(&a.y.y))
	out.y.z.Set(refGfP2FromLimb(&a.y.z))
	return out
}

func gfP12FromRef(a *refGfP12) *gfP12 {
	out := newGFp12()
	out.x.x.Set(gfP2FromRef(a.x.x))
	out.x.y.Set(gfP2FromRef(a.x.y))
	out.x.z.Set(gfP2FromRef(a.x.z))
	out.y.x.Set(gfP2FromRef(a.y.x))
	out.y.y.Set(gfP2FromRef(a.y.y))
	out.y.z.Set(gfP2FromRef(a.y.z))
	return out
}
