package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
	"testing/quick"
)

// randGFp2 returns a uniform element of F_p² for property tests.
func randGFp2(t *testing.T) *gfP2 {
	t.Helper()
	x, err := rand.Int(rand.Reader, P)
	if err != nil {
		t.Fatal(err)
	}
	y, err := rand.Int(rand.Reader, P)
	if err != nil {
		t.Fatal(err)
	}
	return gfP2FromBigs(x, y)
}

func randGFp6(t *testing.T) *gfP6 {
	t.Helper()
	return &gfP6{x: *randGFp2(t), y: *randGFp2(t), z: *randGFp2(t)}
}

func randGFp12(t *testing.T) *gfP12 {
	t.Helper()
	return &gfP12{x: *randGFp6(t), y: *randGFp6(t)}
}

func TestGFp2FieldAxioms(t *testing.T) {
	for i := 0; i < 50; i++ {
		a, b, c := randGFp2(t), randGFp2(t), randGFp2(t)

		// Commutativity and associativity of multiplication.
		ab := newGFp2().Mul(a, b)
		ba := newGFp2().Mul(b, a)
		if !ab.Equal(ba) {
			t.Fatal("gfp2 mul not commutative")
		}
		abc1 := newGFp2().Mul(ab, c)
		bc := newGFp2().Mul(b, c)
		abc2 := newGFp2().Mul(a, bc)
		if !abc1.Equal(abc2) {
			t.Fatal("gfp2 mul not associative")
		}

		// Distributivity.
		apb := newGFp2().Add(a, b)
		l := newGFp2().Mul(apb, c)
		r := newGFp2().Add(newGFp2().Mul(a, c), newGFp2().Mul(b, c))
		if !l.Equal(r) {
			t.Fatal("gfp2 not distributive")
		}

		// Square consistency.
		sq := newGFp2().Square(a)
		aa := newGFp2().Mul(a, a)
		if !sq.Equal(aa) {
			t.Fatal("gfp2 Square != Mul(a,a)")
		}

		// Inverse.
		if !a.IsZero() {
			inv := newGFp2().Invert(a)
			one := newGFp2().Mul(a, inv)
			if !one.IsOne() {
				t.Fatal("gfp2 a·a⁻¹ != 1")
			}
		}

		// Conjugation is an automorphism: conj(ab) = conj(a)·conj(b).
		cab := newGFp2().Conjugate(ab)
		cacb := newGFp2().Mul(newGFp2().Conjugate(a), newGFp2().Conjugate(b))
		if !cab.Equal(cacb) {
			t.Fatal("gfp2 conjugation not multiplicative")
		}
	}
}

func TestGFp2Sqrt(t *testing.T) {
	for i := 0; i < 25; i++ {
		a := randGFp2(t)
		sq := newGFp2().Square(a)
		root := newGFp2()
		if !root.Sqrt(sq) {
			t.Fatal("square of an element reported as non-square")
		}
		rootSq := newGFp2().Square(root)
		if !rootSq.Equal(sq) {
			t.Fatal("Sqrt returned a non-root")
		}
	}
}

func TestGFp2SqrtNonSquare(t *testing.T) {
	// Exactly half of F_p²* is square; find a non-square and check Sqrt
	// rejects it.
	found := false
	for i := 0; i < 100 && !found; i++ {
		a := randGFp2(t)
		if a.IsZero() {
			continue
		}
		root := newGFp2()
		if !root.Sqrt(a) {
			found = true
		}
	}
	if !found {
		t.Fatal("no non-square found in 100 samples (astronomically unlikely)")
	}
}

func TestGFp6FieldAxioms(t *testing.T) {
	for i := 0; i < 25; i++ {
		a, b, c := randGFp6(t), randGFp6(t), randGFp6(t)

		ab := newGFp6().Mul(a, b)
		ba := newGFp6().Mul(b, a)
		if !ab.Equal(ba) {
			t.Fatal("gfp6 mul not commutative")
		}
		abc1 := newGFp6().Mul(ab, c)
		abc2 := newGFp6().Mul(a, newGFp6().Mul(b, c))
		if !abc1.Equal(abc2) {
			t.Fatal("gfp6 mul not associative")
		}

		if !a.IsZero() {
			inv := newGFp6().Invert(a)
			one := newGFp6().Mul(a, inv)
			if !one.IsOne() {
				t.Fatal("gfp6 a·a⁻¹ != 1")
			}
		}

		// τ³ = ξ: multiplying by τ three times equals scaling by ξ.
		tau3 := newGFp6().MulTau(newGFp6().MulTau(newGFp6().MulTau(a)))
		xiA := newGFp6().MulScalar(a, xi)
		if !tau3.Equal(xiA) {
			t.Fatal("gfp6 τ³ != ξ")
		}
	}
}

func TestGFp12FieldAxioms(t *testing.T) {
	for i := 0; i < 10; i++ {
		a, b, c := randGFp12(t), randGFp12(t), randGFp12(t)

		ab := newGFp12().Mul(a, b)
		ba := newGFp12().Mul(b, a)
		if !ab.Equal(ba) {
			t.Fatal("gfp12 mul not commutative")
		}
		abc1 := newGFp12().Mul(ab, c)
		abc2 := newGFp12().Mul(a, newGFp12().Mul(b, c))
		if !abc1.Equal(abc2) {
			t.Fatal("gfp12 mul not associative")
		}

		sq := newGFp12().Square(a)
		aa := newGFp12().Mul(a, a)
		if !sq.Equal(aa) {
			t.Fatal("gfp12 Square != Mul(a,a)")
		}

		if !a.IsZero() {
			inv := newGFp12().Invert(a)
			one := newGFp12().Mul(a, inv)
			if !one.IsOne() {
				t.Fatal("gfp12 a·a⁻¹ != 1")
			}
		}
	}
}

func TestGFp12FrobeniusIsAutomorphism(t *testing.T) {
	a, b := randGFp12(t), randGFp12(t)
	ab := newGFp12().Mul(a, b)
	l := newGFp12().Frobenius(ab)
	r := newGFp12().Mul(newGFp12().Frobenius(a), newGFp12().Frobenius(b))
	if !l.Equal(r) {
		t.Fatal("Frobenius not multiplicative")
	}
	// π² must equal FrobeniusP2.
	pp := newGFp12().Frobenius(newGFp12().Frobenius(a))
	p2 := newGFp12().FrobeniusP2(a)
	if !pp.Equal(p2) {
		t.Fatal("Frobenius∘Frobenius != FrobeniusP2")
	}
}

func TestGFp12ExpHomomorphism(t *testing.T) {
	a := randGFp12(t)
	k1, _ := RandomScalar(rand.Reader)
	k2, _ := RandomScalar(rand.Reader)
	sum := new(big.Int).Add(k1, k2)

	l := newGFp12().Mul(newGFp12().Exp(a, k1), newGFp12().Exp(a, k2))
	r := newGFp12().Exp(a, sum)
	if !l.Equal(r) {
		t.Fatal("a^k1 · a^k2 != a^(k1+k2)")
	}
}

func TestScalarArithmeticProperties(t *testing.T) {
	// quick-check that exponent arithmetic mod Order matches group
	// behaviour in G1.
	f := func(aRaw, bRaw int64) bool {
		a := new(big.Int).Mod(big.NewInt(aRaw), Order)
		b := new(big.Int).Mod(big.NewInt(bRaw), Order)
		sum := new(big.Int).Add(a, b)

		ga := newCurvePoint().Mul(curveGen, a)
		gb := newCurvePoint().Mul(curveGen, b)
		l := newCurvePoint().Add(ga, gb)
		r := newCurvePoint().Mul(curveGen, sum)
		return l.Equal(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBNConstantSanity(t *testing.T) {
	// p and n must be prime, p ≡ 3 (mod 4), p ≡ 1 (mod 6).
	if !P.ProbablyPrime(32) {
		t.Error("p not prime")
	}
	if !Order.ProbablyPrime(32) {
		t.Error("n not prime")
	}
	if new(big.Int).Mod(P, big.NewInt(4)).Int64() != 3 {
		t.Error("p % 4 != 3 (breaks sqrt algorithms)")
	}
	if new(big.Int).Mod(P, big.NewInt(6)).Int64() != 1 {
		t.Error("p % 6 != 1 (breaks tower Frobenius)")
	}
	// Trace of Frobenius: p + 1 − n = 6u² + 1.
	tr := new(big.Int).Add(P, big.NewInt(1))
	tr.Sub(tr, Order)
	want := new(big.Int).Add(ateLoopCount, big.NewInt(1))
	if tr.Cmp(want) != 0 {
		t.Error("trace != 6u² + 1")
	}
}

func TestGFp2SqrtZeroAndOne(t *testing.T) {
	zero := newGFp2()
	root := newGFp2()
	if !root.Sqrt(zero) || !root.IsZero() {
		t.Fatal("sqrt(0) != 0")
	}
	one := newGFp2().SetOne()
	if !root.Sqrt(one) {
		t.Fatal("1 reported non-square")
	}
	sq := newGFp2().Square(root)
	if !sq.IsOne() {
		t.Fatal("sqrt(1)² != 1")
	}
}

func TestGFp2ExpEdges(t *testing.T) {
	a := randGFp2(t)
	if !newGFp2().Exp(a, big.NewInt(0)).IsOne() {
		t.Fatal("a^0 != 1")
	}
	if !newGFp2().Exp(a, big.NewInt(1)).Equal(a) {
		t.Fatal("a^1 != a")
	}
	// Fermat in F_p²: a^(p²−1) = 1 for a ≠ 0.
	p2m1 := new(big.Int).Mul(P, P)
	p2m1.Sub(p2m1, big.NewInt(1))
	if !newGFp2().Exp(a, p2m1).IsOne() {
		t.Fatal("a^(p²−1) != 1")
	}
}

func TestGFp6FrobeniusOrder(t *testing.T) {
	// π^6 = identity on F_p⁶.
	a := randGFp6(t)
	cur := newGFp6().Set(a)
	for i := 0; i < 6; i++ {
		cur.Frobenius(cur)
	}
	if !cur.Equal(a) {
		t.Fatal("Frobenius^6 != identity on gfp6")
	}
}

func TestGFp12FrobeniusOrder(t *testing.T) {
	// π^12 = identity on F_p¹².
	a := randGFp12(t)
	cur := newGFp12().Set(a)
	for i := 0; i < 12; i++ {
		cur.Frobenius(cur)
	}
	if !cur.Equal(a) {
		t.Fatal("Frobenius^12 != identity on gfp12")
	}
}
