package bn256

import (
	"fmt"
	"math/big"
	"math/bits"
)

// gfP is an element of the base field F_p in Montgomery form: the value v
// is stored as v·R mod p with R = 2²⁵⁶, as four little-endian 64-bit limbs,
// always fully reduced into [0, p). All arithmetic below is division-free:
// multiplication interleaves Koç's CIOS Montgomery reduction with the limb
// products, and addition/subtraction/negation reduce with a single
// conditional subtraction selected by mask (no branches on secret data).
//
// The big.Int implementation this replaces is retained in the ref_*.go
// files as the differential-testing reference.
type gfP [4]uint64

// Montgomery parameters, derived from P at package initialization so the
// limb core cannot drift from the big.Int constants.
var (
	pLimbs = limbsOf(P)                // the modulus p
	np     = negPInvMod64()            // −p⁻¹ mod 2⁶⁴
	r2     = gfPRawMod(montRSquared()) // R² mod p (raw limbs)
	rOne   = gfPRawMod(montR())        // R mod p: the Montgomery form of 1

	// Fixed exponents for Fermat inversion and square roots (p ≡ 3 mod 4).
	pMinus2Big     = new(big.Int).Sub(P, big.NewInt(2))
	pPlus1Over4Big = new(big.Int).Rsh(new(big.Int).Add(P, big.NewInt(1)), 2)
)

func montR() *big.Int {
	return new(big.Int).Lsh(big.NewInt(1), 256)
}

func montRSquared() *big.Int {
	r := montR()
	return r.Mul(r, montR())
}

// limbsOf splits 0 ≤ v < 2²⁵⁶ into four little-endian limbs.
func limbsOf(v *big.Int) (out gfP) {
	var buf [32]byte
	v.FillBytes(buf[:])
	for i := 0; i < 4; i++ {
		out[i] = uint64(buf[31-8*i]) | uint64(buf[30-8*i])<<8 |
			uint64(buf[29-8*i])<<16 | uint64(buf[28-8*i])<<24 |
			uint64(buf[27-8*i])<<32 | uint64(buf[26-8*i])<<40 |
			uint64(buf[25-8*i])<<48 | uint64(buf[24-8*i])<<56
	}
	return
}

// gfPRawMod reduces v mod p and returns the raw limbs (no Montgomery
// encoding — used only to seed the Montgomery constants themselves).
func gfPRawMod(v *big.Int) gfP {
	return limbsOf(new(big.Int).Mod(v, P))
}

// negPInvMod64 computes −p⁻¹ mod 2⁶⁴, the per-limb reduction factor of
// Montgomery multiplication.
func negPInvMod64() uint64 {
	two64 := new(big.Int).Lsh(big.NewInt(1), 64)
	inv := new(big.Int).ModInverse(P, two64)
	inv.Neg(inv)
	inv.Mod(inv, two64)
	return inv.Uint64()
}

// ctMask returns all-ones when sel is 1 and zero when sel is 0.
func ctMask(sel uint64) uint64 { return -sel }

// gfpSelect sets c = a when sel is 1 and c = b when sel is 0, in constant
// time.
func gfpSelect(c, a, b *gfP, sel uint64) {
	m := ctMask(sel)
	c[0] = (a[0] & m) | (b[0] &^ m)
	c[1] = (a[1] & m) | (b[1] &^ m)
	c[2] = (a[2] & m) | (b[2] &^ m)
	c[3] = (a[3] & m) | (b[3] &^ m)
}

// gfpAdd sets c = a + b mod p. Because 2p > 2²⁵⁶ the raw sum can carry out
// of the fourth limb, so the conditional subtraction keys on the carry bit
// as well as the comparison with p.
func gfpAdd(c, a, b *gfP) {
	t0, carry := bits.Add64(a[0], b[0], 0)
	t1, carry := bits.Add64(a[1], b[1], carry)
	t2, carry := bits.Add64(a[2], b[2], carry)
	t3, carry := bits.Add64(a[3], b[3], carry)

	u0, borrow := bits.Sub64(t0, pLimbs[0], 0)
	u1, borrow := bits.Sub64(t1, pLimbs[1], borrow)
	u2, borrow := bits.Sub64(t2, pLimbs[2], borrow)
	u3, borrow := bits.Sub64(t3, pLimbs[3], borrow)

	// The sum exceeds p exactly when the addition carried or the
	// subtraction did not borrow.
	sel := carry | (borrow ^ 1)
	gfpSelect(c, &gfP{u0, u1, u2, u3}, &gfP{t0, t1, t2, t3}, sel)
}

// gfpSub sets c = a − b mod p.
func gfpSub(c, a, b *gfP) {
	t0, borrow := bits.Sub64(a[0], b[0], 0)
	t1, borrow := bits.Sub64(a[1], b[1], borrow)
	t2, borrow := bits.Sub64(a[2], b[2], borrow)
	t3, borrow := bits.Sub64(a[3], b[3], borrow)

	// Add p back when the subtraction went negative.
	m := ctMask(borrow)
	var carry uint64
	c[0], carry = bits.Add64(t0, pLimbs[0]&m, 0)
	c[1], carry = bits.Add64(t1, pLimbs[1]&m, carry)
	c[2], carry = bits.Add64(t2, pLimbs[2]&m, carry)
	c[3], _ = bits.Add64(t3, pLimbs[3]&m, carry)
}

// gfpNeg sets c = −a mod p.
func gfpNeg(c, a *gfP) {
	t0, borrow := bits.Sub64(pLimbs[0], a[0], 0)
	t1, borrow := bits.Sub64(pLimbs[1], a[1], borrow)
	t2, borrow := bits.Sub64(pLimbs[2], a[2], borrow)
	t3, _ := bits.Sub64(pLimbs[3], a[3], borrow)

	// p − 0 = p must canonicalize to 0.
	nz := a[0] | a[1] | a[2] | a[3]
	sel := uint64(1)
	if nz == 0 {
		sel = 0
	}
	gfpSelect(c, &gfP{t0, t1, t2, t3}, &gfP{}, sel)
}

// gfpDouble sets c = 2a mod p.
func gfpDouble(c, a *gfP) { gfpAdd(c, a, a) }

// madd returns a·b + c + d as a (hi, lo) pair. The result cannot overflow:
// (2⁶⁴−1)² + 2·(2⁶⁴−1) = 2¹²⁸ − 1.
func madd(a, b, c, d uint64) (uint64, uint64) {
	hi, lo := bits.Mul64(a, b)
	lo, carry := bits.Add64(lo, c, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	lo, carry = bits.Add64(lo, d, 0)
	hi, _ = bits.Add64(hi, 0, carry)
	return hi, lo
}

// gfpMul sets c = a·b·R⁻¹ mod p: CIOS (coarsely integrated operand
// scanning) Montgomery multiplication. p occupies the full 256 bits
// (2p > 2²⁵⁶), so the goff/gnark "no-carry" shortcut does not apply and the
// accumulator keeps an explicit fifth limb; the loop invariant t < 2p means
// that limb is at most 1, and one carry-aware conditional subtraction at
// the end lands the result in [0, p).
func gfpMul(c, a, b *gfP) {
	var t0, t1, t2, t3, t4 uint64

	for i := 0; i < 4; i++ {
		ai := a[i]
		// t += ai·b
		C, u0 := madd(ai, b[0], t0, 0)
		C, u1 := madd(ai, b[1], t1, C)
		C, u2 := madd(ai, b[2], t2, C)
		C, u3 := madd(ai, b[3], t3, C)
		u4, u5 := bits.Add64(t4, C, 0)

		// t += m·p, then shift one limb: m cancels the low limb exactly.
		m := u0 * np
		C, _ = madd(m, pLimbs[0], u0, 0)
		C, t0 = madd(m, pLimbs[1], u1, C)
		C, t1 = madd(m, pLimbs[2], u2, C)
		C, t2 = madd(m, pLimbs[3], u3, C)
		t3, C = bits.Add64(u4, C, 0)
		t4 = u5 + C
	}

	u0, borrow := bits.Sub64(t0, pLimbs[0], 0)
	u1, borrow := bits.Sub64(t1, pLimbs[1], borrow)
	u2, borrow := bits.Sub64(t2, pLimbs[2], borrow)
	u3, borrow := bits.Sub64(t3, pLimbs[3], borrow)
	sel := t4 | (borrow ^ 1)
	gfpSelect(c, &gfP{u0, u1, u2, u3}, &gfP{t0, t1, t2, t3}, sel)
}

// montEncode converts raw limbs into Montgomery form: c = a·R mod p.
func montEncode(c, a *gfP) { gfpMul(c, a, &r2) }

// montDecode converts out of Montgomery form: c = a·R⁻¹ mod p.
func montDecode(c, a *gfP) { gfpMul(c, a, &gfP{1}) }

func (e *gfP) Set(a *gfP) *gfP {
	*e = *a
	return e
}

func (e *gfP) SetZero() *gfP {
	*e = gfP{}
	return e
}

func (e *gfP) SetOne() *gfP {
	*e = rOne
	return e
}

func (e *gfP) IsZero() bool {
	return e[0]|e[1]|e[2]|e[3] == 0
}

// Equal reports whether e == a, comparing all limbs without early exit.
func (e *gfP) Equal(a *gfP) bool {
	v := (e[0] ^ a[0]) | (e[1] ^ a[1]) | (e[2] ^ a[2]) | (e[3] ^ a[3])
	return v == 0
}

// expBig sets e = a^k (k ≥ 0 in plain binary form) by square-and-multiply
// over Montgomery values.
func (e *gfP) expBig(a *gfP, k *big.Int) *gfP {
	sum := rOne
	base := *a
	for i := k.BitLen() - 1; i >= 0; i-- {
		gfpMul(&sum, &sum, &sum)
		if k.Bit(i) != 0 {
			gfpMul(&sum, &sum, &base)
		}
	}
	*e = sum
	return e
}

// Invert sets e = a⁻¹ via Fermat: a^(p−2). The inverse of zero is zero.
func (e *gfP) Invert(a *gfP) *gfP {
	return e.expBig(a, pMinus2Big)
}

// Sqrt sets e to a square root of a and reports whether a is a square,
// using e = a^((p+1)/4), valid because p ≡ 3 (mod 4). The root chosen is
// identical to the one big.Int ModSqrt returns for this prime shape, which
// keeps all deterministic hash-to-point derivations byte-stable.
func (e *gfP) Sqrt(a *gfP) bool {
	var cand, check gfP
	cand.expBig(a, pPlus1Over4Big)
	gfpMul(&check, &cand, &cand)
	if !check.Equal(a) {
		return false
	}
	*e = cand
	return true
}

// IsOdd reports whether the canonical (non-Montgomery) value of e is odd.
func (e *gfP) IsOdd() bool {
	var d gfP
	montDecode(&d, e)
	return d[0]&1 == 1
}

// newGfP returns the Montgomery form of the small integer v.
func newGfP(v int64) (out gfP) {
	if v >= 0 {
		raw := gfP{uint64(v)}
		montEncode(&out, &raw)
		return
	}
	raw := gfP{uint64(-v)}
	montEncode(&out, &raw)
	gfpNeg(&out, &out)
	return
}

// gfPFromBig returns the Montgomery form of v mod p.
func gfPFromBig(v *big.Int) (out gfP) {
	raw := limbsOf(new(big.Int).Mod(v, P))
	montEncode(&out, &raw)
	return
}

// BigInt returns the canonical value of e as a big.Int.
func (e *gfP) BigInt() *big.Int {
	var buf [32]byte
	e.Marshal(buf[:])
	return new(big.Int).SetBytes(buf[:])
}

// Marshal writes the canonical 32-byte big-endian encoding of e — the same
// bytes the retired big.Int core produced, so every wire format is
// unchanged.
func (e *gfP) Marshal(out []byte) {
	var d gfP
	montDecode(&d, e)
	for i := 0; i < 4; i++ {
		v := d[3-i]
		out[8*i+0] = byte(v >> 56)
		out[8*i+1] = byte(v >> 48)
		out[8*i+2] = byte(v >> 40)
		out[8*i+3] = byte(v >> 32)
		out[8*i+4] = byte(v >> 24)
		out[8*i+5] = byte(v >> 16)
		out[8*i+6] = byte(v >> 8)
		out[8*i+7] = byte(v)
	}
}

// Unmarshal reads a 32-byte big-endian value, rejecting encodings ≥ p.
func (e *gfP) Unmarshal(in []byte) error {
	var raw gfP
	for i := 0; i < 4; i++ {
		raw[3-i] = uint64(in[8*i])<<56 | uint64(in[8*i+1])<<48 |
			uint64(in[8*i+2])<<40 | uint64(in[8*i+3])<<32 |
			uint64(in[8*i+4])<<24 | uint64(in[8*i+5])<<16 |
			uint64(in[8*i+6])<<8 | uint64(in[8*i+7])
	}
	// raw must be < p.
	_, borrow := bits.Sub64(raw[0], pLimbs[0], 0)
	_, borrow = bits.Sub64(raw[1], pLimbs[1], borrow)
	_, borrow = bits.Sub64(raw[2], pLimbs[2], borrow)
	_, borrow = bits.Sub64(raw[3], pLimbs[3], borrow)
	if borrow == 0 {
		return ErrMalformedPoint
	}
	montEncode(e, &raw)
	return nil
}

func (e *gfP) String() string {
	return fmt.Sprintf("%v", e.BigInt())
}
