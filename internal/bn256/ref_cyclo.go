package bn256

import "math/big"

// This file implements arithmetic that is valid only in the cyclotomic
// subgroup G_{Φ₆(p²)} of F_p¹²ˣ — the subgroup every element lands in after
// the easy part of the final exponentiation, and which contains all pairing
// values. Two structural facts make it cheaper than the generic field:
// squaring decomposes into three independent F_p⁴ squarings (Granger–Scott),
// and inversion is the p⁶-power Frobenius, i.e. a sign flip. The final
// exponentiation's hard part — three exponentiations by the curve parameter
// u plus an addition chain — spends almost all of its time in exactly these
// two operations.

// CyclotomicSquare sets e = a² assuming a lies in the cyclotomic subgroup.
// It is NOT valid for general field elements (the derivation uses
// a^(p⁶+1)·a^(p²(p²-1)) = 1 to eliminate half the coordinates).
//
// Writing a = (x0 + x1·τ + x2·τ²) + (x3 + x4·τ + x5·τ²)·ω, the compressed
// squaring of Granger–Scott "Faster squaring in the cyclotomic subgroup of
// sixth degree extensions" gives
//
//	z0 = 3(ξ·x4² + x0²) − 2·x0      z3 = 3·2ξ·x1·x5 + 2·x3
//	z1 = 3(ξ·x2² + x3²) − 2·x1      z4 = 3·2·x0·x4   + 2·x4
//	z2 = 3(ξ·x5² + x1²) − 2·x2      z5 = 3·2·x2·x3   + 2·x5
//
// for a total of nine F_p² squarings against the twelve F_p² multiplications
// of the generic Square.
func (e *refGfP12) CyclotomicSquare(a *refGfP12) *refGfP12 {
	x0, x1, x2 := a.y.z, a.y.y, a.y.x
	x3, x4, x5 := a.x.z, a.x.y, a.x.x

	t0 := newRefGFp2().Square(x4)
	t1 := newRefGFp2().Square(x0)
	t6 := newRefGFp2().Add(x4, x0)
	t6.Square(t6)
	t6.Sub(t6, t0)
	t6.Sub(t6, t1) // 2·x4·x0

	t2 := newRefGFp2().Square(x2)
	t3 := newRefGFp2().Square(x3)
	t7 := newRefGFp2().Add(x2, x3)
	t7.Square(t7)
	t7.Sub(t7, t2)
	t7.Sub(t7, t3) // 2·x2·x3

	t4 := newRefGFp2().Square(x5)
	t5 := newRefGFp2().Square(x1)
	t8 := newRefGFp2().Add(x5, x1)
	t8.Square(t8)
	t8.Sub(t8, t4)
	t8.Sub(t8, t5)
	t8.MulXi(t8) // 2·ξ·x5·x1

	t0.MulXi(t0)
	t0.Add(t0, t1) // ξ·x4² + x0²
	t2.MulXi(t2)
	t2.Add(t2, t3) // ξ·x2² + x3²
	t4.MulXi(t4)
	t4.Add(t4, t5) // ξ·x5² + x1²

	z0 := newRefGFp2().Sub(t0, x0)
	z0.Double(z0)
	z0.Add(z0, t0)
	z1 := newRefGFp2().Sub(t2, x1)
	z1.Double(z1)
	z1.Add(z1, t2)
	z2 := newRefGFp2().Sub(t4, x2)
	z2.Double(z2)
	z2.Add(z2, t4)

	z3 := newRefGFp2().Add(t8, x3)
	z3.Double(z3)
	z3.Add(z3, t8)
	z4 := newRefGFp2().Add(t6, x4)
	z4.Double(z4)
	z4.Add(z4, t6)
	z5 := newRefGFp2().Add(t7, x5)
	z5.Double(z5)
	z5.Add(z5, t7)

	e.y.z.Set(z0)
	e.y.y.Set(z1)
	e.y.x.Set(z2)
	e.x.z.Set(z3)
	e.x.y.Set(z4)
	e.x.x.Set(z5)
	return e
}

// cyclotomicExp sets e = a^k for a in the cyclotomic subgroup and k ≥ 0,
// combining Granger–Scott squarings with NAF recoding (conjugate in place
// of inverse for the negative digits).
func (e *refGfP12) cyclotomicExp(a *refGfP12, k *big.Int) *refGfP12 {
	if k == u {
		return e.cyclotomicExpNAF(a, uNAF)
	}
	return e.cyclotomicExpNAF(a, nafDigits(k))
}

// cyclotomicExpNAF is cyclotomicExp over a precomputed NAF digit string
// (least significant digit first).
func (e *refGfP12) cyclotomicExpNAF(a *refGfP12, digits []int8) *refGfP12 {
	if len(digits) == 0 {
		return e.SetOne()
	}
	aInv := newRefGFp12().Conjugate(a)
	sum := newRefGFp12().Set(a) // top digit of a NAF is always 1
	for i := len(digits) - 2; i >= 0; i-- {
		sum.CyclotomicSquare(sum)
		switch digits[i] {
		case 1:
			sum.Mul(sum, a)
		case -1:
			sum.Mul(sum, aInv)
		}
	}
	return e.Set(sum)
}
