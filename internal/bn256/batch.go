package bn256

// Pairing is one (G1, G2) argument pair of a pairing product.
type Pairing struct {
	G1 *G1
	G2 *G2
}

// MillerBatch accumulates the Miller values of all pairs into a single
// un-finalized GT element: Π f_{T,Q_i}(P_i). Identity arguments
// contribute the neutral element, matching Miller. Finalize the result
// once to obtain Π e(G1_i, G2_i) at the cost of a single final
// exponentiation instead of one per pair.
func MillerBatch(pairs []Pairing) *GT {
	acc := newGFp12().SetOne()
	for _, pr := range pairs {
		if pr.G1.p.IsInfinity() || pr.G2.p.IsInfinity() {
			continue
		}
		acc.Mul(acc, miller(pr.G2.p, pr.G1.p))
	}
	return &GT{p: acc}
}

// PairBatch computes the pairing product Π e(G1_i, G2_i) with a shared
// final exponentiation.
func PairBatch(pairs []Pairing) *GT {
	return MillerBatch(pairs).Finalize()
}
