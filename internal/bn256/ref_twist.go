package bn256

import (
	"fmt"
	"math/big"
)

// refTwistPoint implements the sextic twist E': y² = x³ + 3/ξ over F_p² in
// Jacobian projective coordinates. The prime-order subgroup of E'(F_p²)
// is (isomorphic to) G2.
type refTwistPoint struct {
	x, y, z, t *refGfP2
}

func newRefTwistPoint() *refTwistPoint {
	return &refTwistPoint{x: newRefGFp2(), y: newRefGFp2(), z: newRefGFp2(), t: newRefGFp2()}
}

func (c *refTwistPoint) String() string {
	c.MakeAffine()
	return fmt.Sprintf("(%s, %s)", c.x, c.y)
}

func (c *refTwistPoint) Set(a *refTwistPoint) *refTwistPoint {
	c.x.Set(a.x)
	c.y.Set(a.y)
	c.z.Set(a.z)
	c.t.Set(a.t)
	return c
}

func (c *refTwistPoint) SetInfinity() *refTwistPoint {
	c.x.SetOne()
	c.y.SetOne()
	c.z.SetZero()
	c.t.SetZero()
	return c
}

func (c *refTwistPoint) IsInfinity() bool {
	return c.z.IsZero()
}

// IsOnCurve reports whether the affine form of c satisfies y² = x³ + 3/ξ
// and whether c lies in the order-n subgroup (i.e. is a valid G2 element).
func (c *refTwistPoint) IsOnCurve() bool {
	if c.IsInfinity() {
		return true
	}
	c.MakeAffine()
	yy := newRefGFp2().Square(c.y)
	xxx := newRefGFp2().Square(c.x)
	xxx.Mul(xxx, c.x)
	yy.Sub(yy, xxx)
	yy.Sub(yy, refTwistB)
	if !yy.IsZero() {
		return false
	}
	cneg := newRefTwistPoint().Mul(c, Order)
	return cneg.IsInfinity()
}

func (c *refTwistPoint) Equal(a *refTwistPoint) bool {
	if c.IsInfinity() || a.IsInfinity() {
		return c.IsInfinity() == a.IsInfinity()
	}
	z1z1 := newRefGFp2().Square(c.z)
	z2z2 := newRefGFp2().Square(a.z)

	l := newRefGFp2().Mul(c.x, z2z2)
	r := newRefGFp2().Mul(a.x, z1z1)
	if !l.Equal(r) {
		return false
	}

	z1z1.Mul(z1z1, c.z)
	z2z2.Mul(z2z2, a.z)
	l.Mul(c.y, z2z2)
	r.Mul(a.y, z1z1)
	return l.Equal(r)
}

// Add sets c = a + b (add-2007-bl, falling back to Double).
func (c *refTwistPoint) Add(a, b *refTwistPoint) *refTwistPoint {
	if a.IsInfinity() {
		return c.Set(b)
	}
	if b.IsInfinity() {
		return c.Set(a)
	}

	z1z1 := newRefGFp2().Square(a.z)
	z2z2 := newRefGFp2().Square(b.z)
	u1 := newRefGFp2().Mul(a.x, z2z2)
	u2 := newRefGFp2().Mul(b.x, z1z1)

	s1 := newRefGFp2().Mul(a.y, b.z)
	s1.Mul(s1, z2z2)
	s2 := newRefGFp2().Mul(b.y, a.z)
	s2.Mul(s2, z1z1)

	h := newRefGFp2().Sub(u2, u1)
	r := newRefGFp2().Sub(s2, s1)

	if h.IsZero() {
		if r.IsZero() {
			return c.Double(a)
		}
		return c.SetInfinity()
	}
	r.Double(r)

	i := newRefGFp2().Double(h)
	i.Square(i)
	j := newRefGFp2().Mul(h, i)
	v := newRefGFp2().Mul(u1, i)

	x3 := newRefGFp2().Square(r)
	x3.Sub(x3, j)
	x3.Sub(x3, v)
	x3.Sub(x3, v)

	y3 := newRefGFp2().Sub(v, x3)
	y3.Mul(y3, r)
	t := newRefGFp2().Mul(s1, j)
	t.Double(t)
	y3.Sub(y3, t)

	z3 := newRefGFp2().Add(a.z, b.z)
	z3.Square(z3)
	z3.Sub(z3, z1z1)
	z3.Sub(z3, z2z2)
	z3.Mul(z3, h)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Double sets c = 2a (dbl-2009-l).
func (c *refTwistPoint) Double(a *refTwistPoint) *refTwistPoint {
	if a.IsInfinity() {
		return c.SetInfinity()
	}

	aa := newRefGFp2().Square(a.x)
	bb := newRefGFp2().Square(a.y)
	cc := newRefGFp2().Square(bb)

	d := newRefGFp2().Add(a.x, bb)
	d.Square(d)
	d.Sub(d, aa)
	d.Sub(d, cc)
	d.Double(d)

	e := newRefGFp2().Double(aa)
	e.Add(e, aa)
	f := newRefGFp2().Square(e)

	x3 := newRefGFp2().Double(d)
	x3.Sub(f, x3)

	y3 := newRefGFp2().Sub(d, x3)
	y3.Mul(y3, e)
	t := newRefGFp2().Double(cc)
	t.Double(t)
	t.Double(t)
	y3.Sub(y3, t)

	z3 := newRefGFp2().Mul(a.y, a.z)
	z3.Double(z3)

	c.x.Set(x3)
	c.y.Set(y3)
	c.z.Set(z3)
	return c
}

// Mul sets c = k·a using width-5 wNAF; mulGeneric remains as the
// cross-check reference for tests. k is deliberately not reduced mod
// Order: cofactor clearing (mapToTwistSubgroup) multiplies points outside
// the order-n subgroup.
func (c *refTwistPoint) Mul(a *refTwistPoint, k *big.Int) *refTwistPoint {
	if k.Sign() < 0 {
		neg := newRefTwistPoint().Negative(a)
		kAbs := new(big.Int).Neg(k)
		return c.Mul(neg, kAbs)
	}
	if k.BitLen() <= 16 {
		return c.mulGeneric(a, k)
	}

	// odd[i] = (2i+1)·a for i in 0..7.
	var odd [8]*refTwistPoint
	odd[0] = newRefTwistPoint().Set(a)
	twoA := newRefTwistPoint().Double(a)
	for i := 1; i < 8; i++ {
		odd[i] = newRefTwistPoint().Add(odd[i-1], twoA)
	}
	neg := newRefTwistPoint()

	digits := wnafDigits(k, 5)
	sum := newRefTwistPoint().SetInfinity()
	for i := len(digits) - 1; i >= 0; i-- {
		sum.Double(sum)
		switch d := digits[i]; {
		case d > 0:
			sum.Add(sum, odd[(d-1)/2])
		case d < 0:
			sum.Add(sum, neg.Negative(odd[(-d-1)/2]))
		}
	}
	return c.Set(sum)
}

// mulGeneric is the textbook double-and-add ladder.
func (c *refTwistPoint) mulGeneric(a *refTwistPoint, k *big.Int) *refTwistPoint {
	sum := newRefTwistPoint().SetInfinity()
	t := newRefTwistPoint()
	for i := k.BitLen(); i >= 0; i-- {
		t.Double(sum)
		if k.Bit(i) != 0 {
			sum.Add(t, a)
		} else {
			sum.Set(t)
		}
	}
	return c.Set(sum)
}

func (c *refTwistPoint) Negative(a *refTwistPoint) *refTwistPoint {
	c.x.Set(a.x)
	c.y.Neg(a.y)
	c.z.Set(a.z)
	c.t.SetZero()
	return c
}

// MakeAffine normalizes c to z = 1 (or the canonical infinity encoding).
func (c *refTwistPoint) MakeAffine() *refTwistPoint {
	if c.z.IsZero() {
		return c.SetInfinity()
	}
	if c.z.IsOne() {
		return c
	}

	zInv := newRefGFp2().Invert(c.z)
	t := newRefGFp2().Mul(c.y, zInv)
	zInv2 := newRefGFp2().Square(zInv)
	c.y.Mul(t, zInv2)
	t.Mul(c.x, zInv2)
	c.x.Set(t)
	c.z.SetOne()
	c.t.SetOne()
	return c
}
