package bn256

import (
	"crypto/rand"
	"testing"
)

func BenchmarkPairing(b *testing.B) {
	a, _ := RandomScalar(rand.Reader)
	p := newCurvePoint().Mul(curveGen, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atePairing(twistGen, p)
	}
}

func BenchmarkMillerLoop(b *testing.B) {
	a, _ := RandomScalar(rand.Reader)
	p := newCurvePoint().Mul(curveGen, a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		miller(twistGen, p)
	}
}

func BenchmarkFinalExponentiation(b *testing.B) {
	a, _ := RandomScalar(rand.Reader)
	p := newCurvePoint().Mul(curveGen, a)
	f := miller(twistGen, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		finalExponentiation(f)
	}
}

func BenchmarkPreparedMiller(b *testing.B) {
	a, _ := RandomScalar(rand.Reader)
	p := &G1{p: newCurvePoint().Mul(curveGen, a)}
	pq := PrepareG2(new(G2).Base())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pq.Miller(p)
	}
}

func BenchmarkG1VariableMul(b *testing.B) {
	a, _ := RandomScalar(rand.Reader)
	k, _ := RandomScalar(rand.Reader)
	p := newCurvePoint().Mul(curveGen, a)
	out := newCurvePoint()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out.Mul(p, k)
	}
}

func BenchmarkG1ScalarBaseMult(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	e := new(G1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScalarBaseMult(k)
	}
}

func BenchmarkG2ScalarBaseMult(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	e := new(G2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScalarBaseMult(k)
	}
}

func BenchmarkGTScalarMult(b *testing.B) {
	k, _ := RandomScalar(rand.Reader)
	e := new(GT).Base()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ScalarMult(e, k)
	}
}

func BenchmarkHashToG1(b *testing.B) {
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashToG1(msg)
	}
}

func BenchmarkHashToG2(b *testing.B) {
	msg := []byte("benchmark message")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HashToG2(msg)
	}
}
