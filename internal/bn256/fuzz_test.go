package bn256

import (
	"math/big"
	"testing"
)

// FuzzGfPvsBigInt differentially fuzzes the Montgomery limb core against
// big.Int arithmetic mod P. The op selector picks mul/add/sub/inv, and one
// expensive branch cross-checks a full pairing against the reference core.
// Run as a short smoke in CI: go test -run=^$ -fuzz=FuzzGfPvsBigInt -fuzztime=10s
func FuzzGfPvsBigInt(f *testing.F) {
	f.Add([]byte{1}, []byte{2}, byte(0))
	f.Add([]byte{0xff, 0xff}, []byte{0x01}, byte(1))
	f.Add(P.Bytes(), P.Bytes(), byte(2))
	f.Add([]byte{7}, []byte{11}, byte(3))
	f.Add([]byte{3}, []byte{5}, byte(4))

	f.Fuzz(func(t *testing.T, aRaw, bRaw []byte, op byte) {
		if len(aRaw) > 64 || len(bRaw) > 64 {
			return
		}
		a := new(big.Int).Mod(new(big.Int).SetBytes(aRaw), P)
		b := new(big.Int).Mod(new(big.Int).SetBytes(bRaw), P)
		ga := gfPFromBig(a)
		gb := gfPFromBig(b)

		var r gfP
		var want *big.Int
		switch op % 5 {
		case 0:
			gfpMul(&r, &ga, &gb)
			want = new(big.Int).Mod(new(big.Int).Mul(a, b), P)
		case 1:
			gfpAdd(&r, &ga, &gb)
			want = new(big.Int).Mod(new(big.Int).Add(a, b), P)
		case 2:
			gfpSub(&r, &ga, &gb)
			want = new(big.Int).Mod(new(big.Int).Sub(a, b), P)
		case 3:
			if a.Sign() == 0 {
				return
			}
			r.Invert(&ga)
			want = new(big.Int).ModInverse(a, P)
		case 4:
			// Full-pipeline check: ate pairing on scalar multiples of the
			// generators must agree between the limb and reference cores.
			ka := new(big.Int).Mod(a, Order)
			kb := new(big.Int).Mod(b, Order)
			lp := newCurvePoint().Mul(curveGen, ka)
			lq := newTwistPoint().Mul(twistGen, kb)
			limb := atePairing(lq, lp)
			ref := refAtePairing(refTwistPointFromLimb(lq), refCurvePointFromLimb(lp))
			if !refGfP12FromLimb(limb).Equal(ref) {
				t.Fatalf("pairing mismatch: ka=%v kb=%v", ka, kb)
			}
			return
		}
		if r.BigInt().Cmp(want) != 0 {
			t.Fatalf("op %d mismatch: limb=%v bigint=%v (a=%v b=%v)", op%5, r.BigInt(), want, a, b)
		}
	})
}
