package bn256

import (
	"fmt"
	"math/big"
)

// refGfP6 implements the field of size p⁶ as a cubic extension of refGfP2 where
// τ³ = ξ with ξ = i + 3. An element is x·τ² + y·τ + z.
type refGfP6 struct {
	x, y, z *refGfP2
}

func newRefGFp6() *refGfP6 {
	return &refGfP6{x: newRefGFp2(), y: newRefGFp2(), z: newRefGFp2()}
}

func (e *refGfP6) String() string {
	return fmt.Sprintf("(%s, %s, %s)", e.x, e.y, e.z)
}

func (e *refGfP6) Set(a *refGfP6) *refGfP6 {
	e.x.Set(a.x)
	e.y.Set(a.y)
	e.z.Set(a.z)
	return e
}

func (e *refGfP6) SetZero() *refGfP6 {
	e.x.SetZero()
	e.y.SetZero()
	e.z.SetZero()
	return e
}

func (e *refGfP6) SetOne() *refGfP6 {
	e.x.SetZero()
	e.y.SetZero()
	e.z.SetOne()
	return e
}

func (e *refGfP6) Minimal() *refGfP6 {
	e.x.Minimal()
	e.y.Minimal()
	e.z.Minimal()
	return e
}

func (e *refGfP6) IsZero() bool {
	return e.x.IsZero() && e.y.IsZero() && e.z.IsZero()
}

func (e *refGfP6) IsOne() bool {
	return e.x.IsZero() && e.y.IsZero() && e.z.IsOne()
}

func (e *refGfP6) Equal(a *refGfP6) bool {
	return e.x.Equal(a.x) && e.y.Equal(a.y) && e.z.Equal(a.z)
}

func (e *refGfP6) Neg(a *refGfP6) *refGfP6 {
	e.x.Neg(a.x)
	e.y.Neg(a.y)
	e.z.Neg(a.z)
	return e
}

func (e *refGfP6) Add(a, b *refGfP6) *refGfP6 {
	e.x.Add(a.x, b.x)
	e.y.Add(a.y, b.y)
	e.z.Add(a.z, b.z)
	return e
}

func (e *refGfP6) Double(a *refGfP6) *refGfP6 {
	e.x.Double(a.x)
	e.y.Double(a.y)
	e.z.Double(a.z)
	return e
}

func (e *refGfP6) Sub(a, b *refGfP6) *refGfP6 {
	e.x.Sub(a.x, b.x)
	e.y.Sub(a.y, b.y)
	e.z.Sub(a.z, b.z)
	return e
}

// Mul sets e = a·b using the 6-multiplication Karatsuba-style schedule.
// Writing a = a0 + a1·τ + a2·τ² (so a0 = a.z, a1 = a.y, a2 = a.x):
//
//	t0 = a0·b0, t1 = a1·b1, t2 = a2·b2
//	r0 = t0 + ξ·((a1+a2)(b1+b2) − t1 − t2)
//	r1 = (a0+a1)(b0+b1) − t0 − t1 + ξ·t2
//	r2 = (a0+a2)(b0+b2) − t0 − t2 + t1
func (e *refGfP6) Mul(a, b *refGfP6) *refGfP6 {
	t0 := newRefGFp2().Mul(a.z, b.z)
	t1 := newRefGFp2().Mul(a.y, b.y)
	t2 := newRefGFp2().Mul(a.x, b.x)

	s1 := newRefGFp2().Add(a.y, a.x)
	s2 := newRefGFp2().Add(b.y, b.x)
	r0 := newRefGFp2().Mul(s1, s2)
	r0.Sub(r0, t1)
	r0.Sub(r0, t2)
	r0.MulXi(r0)
	r0.Add(r0, t0)

	s1.Add(a.z, a.y)
	s2.Add(b.z, b.y)
	r1 := newRefGFp2().Mul(s1, s2)
	r1.Sub(r1, t0)
	r1.Sub(r1, t1)
	xiT2 := newRefGFp2().MulXi(t2)
	r1.Add(r1, xiT2)

	s1.Add(a.z, a.x)
	s2.Add(b.z, b.x)
	r2 := newRefGFp2().Mul(s1, s2)
	r2.Sub(r2, t0)
	r2.Sub(r2, t2)
	r2.Add(r2, t1)

	e.z.Set(r0)
	e.y.Set(r1)
	e.x.Set(r2)
	return e
}

func (e *refGfP6) MulScalar(a *refGfP6, b *refGfP2) *refGfP6 {
	tx := newRefGFp2().Mul(a.x, b)
	ty := newRefGFp2().Mul(a.y, b)
	tz := newRefGFp2().Mul(a.z, b)
	e.x.Set(tx)
	e.y.Set(ty)
	e.z.Set(tz)
	return e
}

func (e *refGfP6) MulGFp(a *refGfP6, b *big.Int) *refGfP6 {
	e.x.MulScalar(a.x, b)
	e.y.MulScalar(a.y, b)
	e.z.MulScalar(a.z, b)
	return e
}

// MulSparse2 sets e = a·(y2·τ + z2), a multiplication by an element with
// only two non-zero coefficients (six refGfP2 multiplications instead of the
// general case's — used by the pairing's sparse line multiplication).
func (e *refGfP6) MulSparse2(a *refGfP6, y2, z2 *refGfP2) *refGfP6 {
	// (x1τ² + y1τ + z1)(y2τ + z2):
	//   z' = z1z2 + ξ·x1y2
	//   y' = y1z2 + z1y2
	//   x' = x1z2 + y1y2
	tz := newRefGFp2().Mul(a.x, y2)
	tz.MulXi(tz)
	t := newRefGFp2().Mul(a.z, z2)
	tz.Add(tz, t)

	ty := newRefGFp2().Mul(a.y, z2)
	t.Mul(a.z, y2)
	ty.Add(ty, t)

	tx := newRefGFp2().Mul(a.x, z2)
	t.Mul(a.y, y2)
	tx.Add(tx, t)

	e.x.Set(tx)
	e.y.Set(ty)
	e.z.Set(tz)
	return e
}

// MulTau sets e = a·τ: (x·τ² + y·τ + z)·τ = y·τ² + z·τ + x·ξ.
func (e *refGfP6) MulTau(a *refGfP6) *refGfP6 {
	tz := newRefGFp2().MulXi(a.x)
	ty := newRefGFp2().Set(a.y)
	e.y.Set(a.z)
	e.x.Set(ty)
	e.z.Set(tz)
	return e
}

func (e *refGfP6) Square(a *refGfP6) *refGfP6 {
	return e.Mul(a, a)
}

// Invert sets e = a⁻¹. With a = a0 + a1·τ + a2·τ²:
//
//	c0 = a0² − ξ·a1·a2
//	c1 = ξ·a2² − a0·a1
//	c2 = a1² − a0·a2
//	F  = a0·c0 + ξ·(a2·c1 + a1·c2)
//	a⁻¹ = (c0 + c1·τ + c2·τ²)/F
func (e *refGfP6) Invert(a *refGfP6) *refGfP6 {
	a0, a1, a2 := a.z, a.y, a.x

	c0 := newRefGFp2().Square(a0)
	t := newRefGFp2().Mul(a1, a2)
	t.MulXi(t)
	c0.Sub(c0, t)

	c1 := newRefGFp2().Square(a2)
	c1.MulXi(c1)
	t.Mul(a0, a1)
	c1.Sub(c1, t)

	c2 := newRefGFp2().Square(a1)
	t.Mul(a0, a2)
	c2.Sub(c2, t)

	f := newRefGFp2().Mul(a2, c1)
	t.Mul(a1, c2)
	f.Add(f, t)
	f.MulXi(f)
	t.Mul(a0, c0)
	f.Add(f, t)
	f.Invert(f)

	e.z.Mul(c0, f)
	e.y.Mul(c1, f)
	e.x.Mul(c2, f)
	return e
}

// Frobenius sets e = a^p. With τ^p = ξ^((p−1)/3)·τ:
//
//	(x·τ² + y·τ + z)^p = x̄·ξ^(2(p−1)/3)·τ² + ȳ·ξ^((p−1)/3)·τ + z̄.
func (e *refGfP6) Frobenius(a *refGfP6) *refGfP6 {
	e.x.Conjugate(a.x)
	e.y.Conjugate(a.y)
	e.z.Conjugate(a.z)

	e.x.Mul(e.x, refXiToPMinus1Over3)
	e.x.Mul(e.x, refXiToPMinus1Over3)
	e.y.Mul(e.y, refXiToPMinus1Over3)
	return e
}

// FrobeniusP2 sets e = a^(p²). Conjugation in F_p² squares away, and
// τ^(p²) = ξ^((p²−1)/3)·τ where ξ^((p²−1)/3) lies in F_p.
func (e *refGfP6) FrobeniusP2(a *refGfP6) *refGfP6 {
	e.x.Mul(a.x, refXiToPSquaredMinus1Over3)
	e.x.Mul(e.x, refXiToPSquaredMinus1Over3)
	e.y.Mul(a.y, refXiToPSquaredMinus1Over3)
	e.z.Set(a.z)
	return e
}
