package bn256

import "math/big"

// u is the BN parameter that determines the prime: u = 1868033³.
// Every other constant in this file is derived from it.
var u = new(big.Int).Exp(big.NewInt(1868033), big.NewInt(3), nil)

// P is the prime over which the base field is formed: 36u⁴+36u³+24u²+6u+1.
var P = bnPrime()

// Order is the number of elements in G1, G2 and GT: 36u⁴+36u³+18u²+6u+1.
var Order = bnOrder()

// ateLoopCount is the Miller loop length for the (plain) ate pairing,
// T = t − 1 = 6u² where t = 6u² + 1 is the trace of Frobenius.
var ateLoopCount = new(big.Int).Mul(big.NewInt(6), new(big.Int).Mul(u, u))

// curveB is the constant of E: y² = x³ + curveB over F_p.
var curveB = big.NewInt(3)

// curveBGfP is curveB in Montgomery limb form.
var curveBGfP = newGfP(3)

// xi is ξ = i + 3 ∈ F_p², the sextic non-residue defining the tower
// F_p¹² = F_p²[w]/(w⁶ − ξ) and the twist E': y² = x³ + 3/ξ.
var xi = &gfP2{x: newGfP(1), y: newGfP(3)}

// twistB = 3/ξ is the constant of the sextic twist.
var twistB = computeTwistB()

func computeTwistB() *gfP2 {
	inv := newGFp2().Invert(xi)
	return inv.MulScalar(inv, &curveBGfP)
}

// Frobenius twist factors, all computed from ξ and p. The names follow the
// exponents: xiToPMinus1Over6 = ξ^((p−1)/6) and so on. They are elements of
// F_p² (several of them in fact lie in F_p).
var (
	xiToPMinus1Over6 = frobConst(6, 1)
	xiToPMinus1Over3 = frobConst(3, 1)
	xiToPMinus1Over2 = frobConst(2, 1)

	xiToPSquaredMinus1Over6 = frobConst(6, 2)
	xiToPSquaredMinus1Over3 = frobConst(3, 2)
	xiToPSquaredMinus1Over2 = frobConst(2, 2)
)

// curveGen is the canonical generator of G1: the point (1, 2). E(F_p) has
// prime order n, so any non-identity point generates the group.
var curveGen = &curvePoint{
	x: newGfP(1),
	y: newGfP(2),
	z: newGfP(1),
	t: newGfP(1),
}

// twistGen is a generator of G2, derived deterministically by hashing to
// the twist and clearing the cofactor (see makeTwistGen in twist.go).
var twistGen = makeTwistGen()

// gtGen is e(g1, g2), the canonical generator of GT.
var gtGen = atePairing(twistGen, curveGen)

func bnPrime() *big.Int {
	// 36u⁴ + 36u³ + 24u² + 6u + 1
	return bnPoly(36, 36, 24, 6, 1)
}

func bnOrder() *big.Int {
	// 36u⁴ + 36u³ + 18u² + 6u + 1
	return bnPoly(36, 36, 18, 6, 1)
}

// bnPoly evaluates c4·u⁴ + c3·u³ + c2·u² + c1·u + c0.
func bnPoly(c4, c3, c2, c1, c0 int64) *big.Int {
	acc := big.NewInt(c4)
	for _, c := range []int64{c3, c2, c1, c0} {
		acc.Mul(acc, u)
		acc.Add(acc, big.NewInt(c))
	}
	return acc
}

// frobConst computes ξ^((p^power − 1)/div) in F_p².
func frobConst(div int64, power int) *gfP2 {
	pk := new(big.Int).Exp(P, big.NewInt(int64(power)), nil)
	e := new(big.Int).Sub(pk, big.NewInt(1))
	e.Div(e, big.NewInt(div))
	return newGFp2().Exp(xi, e)
}
