package bn256

import "math/big"

// This file implements the (plain) ate pairing
//
//	e(Q, P) = f_{T,Q}(P)^((p¹²−1)/n),  T = t − 1 = 6u²,
//
// for Q in the order-n subgroup of the twist and P ∈ E(F_p). The Miller
// loop works on affine twist coordinates: the untwist map for our tower is
// (x', y') ↦ (x'·w², y'·w³) with w⁶ = ξ, so a line through untwisted points
// evaluated at P = (x_P, y_P) collapses to the sparse element
//
//	l(P) = y_P − λ'·x_P·w + (λ'·x'_S − y'_S)·w³,
//
// where λ' ∈ F_p² is the twist-coordinate slope and S is the point the line
// passes through. Vertical lines lie in the even subalgebra F_p⁶ and are
// eliminated by the final exponentiation, so they are omitted.

// refLineValue assembles the sparse line element from its three coefficients:
// c0 at w⁰ (a base-field scalar), c1 at w¹ and c3 at w³ (both F_p²).
func refLineValue(c0 *big.Int, c1, c3 *refGfP2) *refGfP12 {
	l := newRefGFp12()
	l.y.z.y.Set(c0) // w⁰
	l.x.z.Set(c1)   // w¹ = ω
	l.x.y.Set(c3)   // w³ = τ·ω
	return l.Minimal()
}

// refAffineTwist is a twist point in affine coordinates for the Miller loop.
type refAffineTwist struct {
	x, y *refGfP2
}

// doubleStep doubles r in place and returns the tangent-line coefficients
// at p (the sparse slots of refLineValue).
func (r *refAffineTwist) doubleStep(p *refCurvePoint) (*big.Int, *refGfP2, *refGfP2) {
	// λ' = 3x²/(2y)
	lam := newRefGFp2().Square(r.x)
	three := newRefGFp2().Double(lam)
	three.Add(three, lam)
	den := newRefGFp2().Double(r.y)
	den.Invert(den)
	lam.Mul(three, den)

	// Line: y_P − λ'x_P·w + (λ'x_R − y_R)·w³, using R before doubling.
	c1 := newRefGFp2().MulScalar(lam, p.x)
	c1.Neg(c1)
	c3 := newRefGFp2().Mul(lam, r.x)
	c3.Sub(c3, r.y)

	// x3 = λ'² − 2x, y3 = λ'(x − x3) − y.
	x3 := newRefGFp2().Square(lam)
	x3.Sub(x3, r.x)
	x3.Sub(x3, r.x)
	y3 := newRefGFp2().Sub(r.x, x3)
	y3.Mul(y3, lam)
	y3.Sub(y3, r.y)

	r.x.Set(x3)
	r.y.Set(y3)
	return p.y, c1, c3
}

// addStep adds q to r in place and returns the chord-line coefficients at p.
func (r *refAffineTwist) addStep(q *refAffineTwist, p *refCurvePoint) (*big.Int, *refGfP2, *refGfP2) {
	// λ' = (y_R − y_Q)/(x_R − x_Q)
	num := newRefGFp2().Sub(r.y, q.y)
	den := newRefGFp2().Sub(r.x, q.x)
	den.Invert(den)
	lam := newRefGFp2().Mul(num, den)

	c1 := newRefGFp2().MulScalar(lam, p.x)
	c1.Neg(c1)
	c3 := newRefGFp2().Mul(lam, q.x)
	c3.Sub(c3, q.y)

	x3 := newRefGFp2().Square(lam)
	x3.Sub(x3, r.x)
	x3.Sub(x3, q.x)
	y3 := newRefGFp2().Sub(r.x, x3)
	y3.Mul(y3, lam)
	y3.Sub(y3, r.y)

	r.x.Set(x3)
	r.y.Set(y3)
	return p.y, c1, c3
}

// refMiller computes f_{T,Q}(P) for T = ateLoopCount.
func refMiller(q *refTwistPoint, p *refCurvePoint) *refGfP12 {
	qa := newRefTwistPoint().Set(q)
	qa.MakeAffine()
	pa := newRefCurvePoint().Set(p)
	pa.MakeAffine()

	base := &refAffineTwist{x: newRefGFp2().Set(qa.x), y: newRefGFp2().Set(qa.y)}
	r := &refAffineTwist{x: newRefGFp2().Set(qa.x), y: newRefGFp2().Set(qa.y)}

	f := newRefGFp12().SetOne()
	t := ateLoopCount
	for i := t.BitLen() - 2; i >= 0; i-- {
		f.Square(f)
		c0, c1, c3 := r.doubleStep(pa)
		f.MulLine(f, c0, c1, c3)
		if t.Bit(i) != 0 {
			c0, c1, c3 = r.addStep(base, pa)
			f.MulLine(f, c0, c1, c3)
		}
	}
	return f
}

// refFinalExponentiationEasy computes f^((p⁶−1)(p²+1)), mapping f into the
// cyclotomic subgroup.
func refFinalExponentiationEasy(in *refGfP12) *refGfP12 {
	t1 := newRefGFp12().Conjugate(in) // in^(p⁶)
	inv := newRefGFp12().Invert(in)
	t1.Mul(t1, inv) // in^(p⁶−1)
	t2 := newRefGFp12().FrobeniusP2(t1)
	t1.Mul(t1, t2) // ^(p²+1)
	return t1
}

// refFinalExponentiation computes f^((p¹²−1)/n) using the Devegili–Scott–Dahab
// addition chain for BN curves in the hard part. After the easy part the
// value lies in the cyclotomic subgroup, so the three exponentiations by u
// and the chain's squarings use the cheaper cyclotomic arithmetic
// (Granger–Scott squaring, conjugation as inversion under NAF recoding).
func refFinalExponentiation(in *refGfP12) *refGfP12 {
	t1 := refFinalExponentiationEasy(in)

	fp := newRefGFp12().Frobenius(t1)
	fp2 := newRefGFp12().FrobeniusP2(t1)
	fp3 := newRefGFp12().Frobenius(fp2)

	fu := newRefGFp12().cyclotomicExp(t1, u)
	fu2 := newRefGFp12().cyclotomicExp(fu, u)
	fu3 := newRefGFp12().cyclotomicExp(fu2, u)

	y3 := newRefGFp12().Frobenius(fu)
	fu2p := newRefGFp12().Frobenius(fu2)
	fu3p := newRefGFp12().Frobenius(fu3)
	y2 := newRefGFp12().FrobeniusP2(fu2)

	y0 := newRefGFp12().Mul(fp, fp2)
	y0.Mul(y0, fp3)

	y1 := newRefGFp12().Conjugate(t1)
	y5 := newRefGFp12().Conjugate(fu2)
	y3.Conjugate(y3)
	y4 := newRefGFp12().Mul(fu, fu2p)
	y4.Conjugate(y4)
	y6 := newRefGFp12().Mul(fu3, fu3p)
	y6.Conjugate(y6)

	t0 := newRefGFp12().CyclotomicSquare(y6)
	t0.Mul(t0, y4)
	t0.Mul(t0, y5)
	t1b := newRefGFp12().Mul(y3, y5)
	t1b.Mul(t1b, t0)
	t0.Mul(t0, y2)
	t1b.CyclotomicSquare(t1b)
	t1b.Mul(t1b, t0)
	t1b.CyclotomicSquare(t1b)
	t0.Mul(t1b, y1)
	t1b.Mul(t1b, y0)
	t0.CyclotomicSquare(t0)
	t0.Mul(t0, t1b)
	return t0
}

// refFinalExponentiationGeneric computes f^((p¹²−1)/n) the slow, unambiguous
// way: the easy part followed by a plain exponentiation by (p⁴−p²+1)/n.
// The test suite asserts it agrees with refFinalExponentiation.
func refFinalExponentiationGeneric(in *refGfP12) *refGfP12 {
	t := refFinalExponentiationEasy(in)

	p2 := new(big.Int).Mul(P, P)
	p4 := new(big.Int).Mul(p2, p2)
	e := new(big.Int).Sub(p4, p2)
	e.Add(e, big.NewInt(1))
	e.Div(e, Order)
	return newRefGFp12().Exp(t, e)
}

// refAtePairing computes e(Q, P). If either input is the identity, the result
// is the identity of GT.
func refAtePairing(q *refTwistPoint, p *refCurvePoint) *refGfP12 {
	if q.IsInfinity() || p.IsInfinity() {
		return newRefGFp12().SetOne()
	}
	return refFinalExponentiation(refMiller(q, p))
}

// refTatePairing computes the reduced Tate pairing t(P, Q) = f_{n,P}(φ(Q))
// raised to (p¹²−1)/n, with a textbook Miller loop over the full group
// order and generic line evaluation in F_p¹². It is deliberately
// independent of the ate machinery above (different loop, different final
// exponentiation) and exists to cross-check it in tests.
func refTatePairing(p *refCurvePoint, q *refTwistPoint) *refGfP12 {
	if q.IsInfinity() || p.IsInfinity() {
		return newRefGFp12().SetOne()
	}

	pa := newRefCurvePoint().Set(p)
	pa.MakeAffine()
	qa := newRefTwistPoint().Set(q)
	qa.MakeAffine()

	// Untwist Q: x_Q = x'·w² (slot τ of the even part), y_Q = y'·w³
	// (slot τ·ω of the odd part).
	xQ := newRefGFp12()
	xQ.y.y.Set(qa.x)
	yQ := newRefGFp12()
	yQ.x.y.Set(qa.y)

	// Affine coordinates of the running point R, in F_p.
	rx := new(big.Int).Set(pa.x)
	ry := new(big.Int).Set(pa.y)
	bx := new(big.Int).Set(pa.x)
	by := new(big.Int).Set(pa.y)

	f := newRefGFp12().SetOne()
	l := newRefGFp12()

	evalLine := func(lam, sx, sy *big.Int) {
		// l(Q) = (y_Q − sy) − λ(x_Q − sx) where sy, sx, λ ∈ F_p.
		t := newRefGFp12()
		t.y.z.y.Sub(big.NewInt(0), sy)
		t.Add(t, yQ)

		t2 := newRefGFp12()
		t2.y.z.y.Sub(big.NewInt(0), sx)
		t2.Add(t2, xQ)
		lamNeg := new(big.Int).Neg(lam)
		lamNeg.Mod(lamNeg, P)
		t2.MulGFp(t2, lamNeg)

		l.Add(t, t2)
		l.Minimal()
	}

	n := Order
	for i := n.BitLen() - 2; i >= 0; i-- {
		f.Square(f)

		// Double R with tangent line.
		lam := new(big.Int).Mul(rx, rx)
		lam.Mul(lam, big.NewInt(3))
		den := new(big.Int).Lsh(ry, 1)
		den.ModInverse(den, P)
		lam.Mul(lam, den)
		lam.Mod(lam, P)
		evalLine(lam, rx, ry)
		f.Mul(f, l)

		x3 := new(big.Int).Mul(lam, lam)
		x3.Sub(x3, rx)
		x3.Sub(x3, rx)
		x3.Mod(x3, P)
		y3 := new(big.Int).Sub(rx, x3)
		y3.Mul(y3, lam)
		y3.Sub(y3, ry)
		y3.Mod(y3, P)
		rx.Set(x3)
		ry.Set(y3)

		if n.Bit(i) != 0 {
			// Add base with chord line. When R = −base (which happens only
			// at the very last addition, since the loop computes [n]P = O),
			// the chord degenerates to a vertical line, which lies in the
			// subfield F_p⁶ and is eliminated by the final exponentiation.
			den := new(big.Int).Sub(rx, bx)
			den.Mod(den, P)
			if den.Sign() == 0 {
				continue
			}
			lam := new(big.Int).Sub(ry, by)
			den.ModInverse(den, P)
			lam.Mul(lam, den)
			lam.Mod(lam, P)
			evalLine(lam, bx, by)
			f.Mul(f, l)

			x3 := new(big.Int).Mul(lam, lam)
			x3.Sub(x3, rx)
			x3.Sub(x3, bx)
			x3.Mod(x3, P)
			y3 := new(big.Int).Sub(rx, x3)
			y3.Mul(y3, lam)
			y3.Sub(y3, ry)
			y3.Mod(y3, P)
			rx.Set(x3)
			ry.Set(y3)
		}
	}
	return refFinalExponentiationGeneric(f)
}
