package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func TestGeneratorOrders(t *testing.T) {
	if !newCurvePoint().Mul(curveGen, Order).IsInfinity() {
		t.Error("curveGen does not have order n")
	}
	if !newTwistPoint().Mul(twistGen, Order).IsInfinity() {
		t.Error("twistGen does not have order n")
	}
	if curveGen.IsInfinity() || twistGen.IsInfinity() {
		t.Error("generator is the identity")
	}
}

func TestGeneratorsOnCurve(t *testing.T) {
	g := newCurvePoint().Set(curveGen)
	if !g.IsOnCurve() {
		t.Error("curveGen not on curve")
	}
	h := newTwistPoint().Set(twistGen)
	if !h.IsOnCurve() {
		t.Error("twistGen not on twist")
	}
}

func TestPairingNonDegenerate(t *testing.T) {
	e := atePairing(twistGen, curveGen)
	if e.IsOne() {
		t.Fatal("e(g1, g2) = 1: pairing degenerate")
	}
	one := newGFp12().Exp(e, Order)
	if !one.IsOne() {
		t.Fatal("e(g1, g2)^n != 1: pairing value outside GT")
	}
}

func TestPairingBilinear(t *testing.T) {
	for i := 0; i < 3; i++ {
		a, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RandomScalar(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}

		pa := newCurvePoint().Mul(curveGen, a)
		qb := newTwistPoint().Mul(twistGen, b)

		e1 := atePairing(qb, pa)

		ab := new(big.Int).Mul(a, b)
		ab.Mod(ab, Order)
		e2 := newGFp12().Exp(gtGen, ab)

		if !e1.Equal(e2) {
			t.Fatalf("bilinearity failed: e(a·P, b·Q) != e(P,Q)^(ab) (iteration %d)", i)
		}
	}
}

func TestPairingIdentity(t *testing.T) {
	inf1 := newCurvePoint().SetInfinity()
	inf2 := newTwistPoint().SetInfinity()
	if !atePairing(twistGen, inf1).IsOne() {
		t.Error("e(O, g2) != 1")
	}
	if !atePairing(inf2, curveGen).IsOne() {
		t.Error("e(g1, O) != 1")
	}
}

func TestFinalExponentiationAgreement(t *testing.T) {
	// The optimized hard part must agree with the generic exponentiation
	// on genuine Miller outputs.
	for i := 0; i < 2; i++ {
		a, _ := RandomScalar(rand.Reader)
		pa := newCurvePoint().Mul(curveGen, a)
		f := miller(twistGen, pa)
		fast := finalExponentiation(f)
		slow := finalExponentiationGeneric(f)
		if !fast.Equal(slow) {
			t.Fatal("optimized final exponentiation disagrees with generic")
		}
	}
}

func TestTatePairingBilinearAndConsistent(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)

	pa := newCurvePoint().Mul(curveGen, a)
	qb := newTwistPoint().Mul(twistGen, b)

	// The Tate pairing lives in the big.Int reference core, so this test
	// doubles as a cross-core check: limb-core points are converted to
	// reference form and paired with an entirely independent Miller loop.
	base := refTatePairing(refCurveGen, refTwistGen)
	if base.IsOne() {
		t.Fatal("Tate pairing degenerate")
	}
	ab := new(big.Int).Mul(a, b)
	ab.Mod(ab, Order)
	want := newRefGFp12().Exp(base, ab)
	got := refTatePairing(refCurvePointFromLimb(pa), refTwistPointFromLimb(qb))
	if !got.Equal(want) {
		t.Fatal("Tate bilinearity failed")
	}

	// The ate and Tate pairings differ by a fixed exponent L (both are
	// powers of a common primitive pairing). Verify cross-consistency:
	// ate(Q, aP) computed via ate must match base_ate^a exactly when the
	// same a scales in Tate. Equivalent discrete-log structure check:
	// ate(bQ, aP) == ate(Q,P)^(ab) was covered above; here check that
	// the two pairings agree after aligning generators.
	ate := atePairing(qb, pa)
	ateBase := gtGen
	wantAte := newGFp12().Exp(ateBase, ab)
	if !ate.Equal(wantAte) {
		t.Fatal("ate pairing inconsistent with its own base")
	}
}

func TestFrobeniusConsistency(t *testing.T) {
	// a^p via Frobenius must equal a^p via exponentiation.
	a, _ := RandomScalar(rand.Reader)
	x := newGFp12().Exp(gtGen, a)

	viaFrob := newGFp12().Frobenius(x)
	viaExp := newGFp12().Exp(x, P)
	if !viaFrob.Equal(viaExp) {
		t.Error("Frobenius(x) != x^p")
	}

	p2 := new(big.Int).Mul(P, P)
	viaFrob2 := newGFp12().FrobeniusP2(x)
	viaExp2 := newGFp12().Exp(x, p2)
	if !viaFrob2.Equal(viaExp2) {
		t.Error("FrobeniusP2(x) != x^(p²)")
	}
}

func TestConjugateIsInverseInGT(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	x := newGFp12().Exp(gtGen, a)
	conj := newGFp12().Conjugate(x)
	prod := newGFp12().Mul(x, conj)
	if !prod.IsOne() {
		t.Error("conjugate is not the inverse on the cyclotomic subgroup")
	}
}

func TestGTExponentOrder(t *testing.T) {
	a, _ := RandomScalar(rand.Reader)
	x := newGFp12().Exp(gtGen, a)
	if !newGFp12().Exp(x, Order).IsOne() {
		t.Error("GT element does not have order dividing n")
	}
}
