package bn256

import "fmt"

// Compressed encodings. The paper's headline communication-overhead claim
// rests on short signatures; compressed G1 points (x-coordinate plus one
// sign byte) cut each G1 element from 64 to 33 bytes, which the signature
// layer exposes as a compact wire format.

// G1CompressedSize is the byte length of a compressed G1 encoding.
const G1CompressedSize = numBytes + 1

// Compressed-point tag bytes.
const (
	tagCompressedEven     = 0x02 // y is the lexicographically smaller root
	tagCompressedOdd      = 0x03 // y is the larger root
	tagCompressedInfinity = 0x00
)

// MarshalCompressed encodes e as a 33-byte compressed point.
func (e *G1) MarshalCompressed() []byte {
	out := make([]byte, G1CompressedSize)
	if e.p.IsInfinity() {
		out[0] = tagCompressedInfinity
		return out
	}
	e.p.MakeAffine()
	// Tag by the parity of y (canonical representative in [0, p)).
	if e.p.y.IsOdd() {
		out[0] = tagCompressedOdd
	} else {
		out[0] = tagCompressedEven
	}
	e.p.x.Marshal(out[1:])
	return out
}

// UnmarshalCompressed decodes a compressed point, recomputing y from the
// curve equation and the parity tag.
func (e *G1) UnmarshalCompressed(m []byte) (*G1, error) {
	if len(m) != G1CompressedSize {
		return nil, fmt.Errorf("%w: compressed length %d", ErrMalformedPoint, len(m))
	}
	if e.p == nil {
		e.p = newCurvePoint()
	}
	switch m[0] {
	case tagCompressedInfinity:
		if !allZero(m[1:]) {
			return nil, fmt.Errorf("%w: nonzero infinity encoding", ErrMalformedPoint)
		}
		e.p.SetInfinity()
		return e, nil
	case tagCompressedEven, tagCompressedOdd:
	default:
		return nil, fmt.Errorf("%w: tag 0x%02x", ErrMalformedPoint, m[0])
	}

	var x gfP
	if err := x.Unmarshal(m[1:]); err != nil {
		return nil, err
	}
	// y² = x³ + 3.
	var yy, y gfP
	gfpMul(&yy, &x, &x)
	gfpMul(&yy, &yy, &x)
	gfpAdd(&yy, &yy, &curveBGfP)
	if !y.Sqrt(&yy) {
		return nil, ErrNotOnCurve
	}
	wantOdd := m[0] == tagCompressedOdd
	if y.IsOdd() != wantOdd {
		gfpNeg(&y, &y)
	}

	e.p.x = x
	e.p.y = y
	e.p.z.SetOne()
	e.p.t.SetOne()
	return e, nil
}
