package bn256

import (
	"fmt"
	"math/big"
)

// gfP2 implements the field of size p² as a quadratic extension of the base
// field F_p with i² = −1. An element is x·i + y. Coordinates are gfP limb
// values in Montgomery form, so the zero value of the struct is a valid 0.
//
// Methods follow the mutate-receiver convention: c.Op(a, b) sets c = a op b
// and returns c. Receivers may alias arguments.
type gfP2 struct {
	x, y gfP
}

func newGFp2() *gfP2 {
	return &gfP2{}
}

// gfP2FromBigs builds an element from canonical big.Int coordinates.
func gfP2FromBigs(x, y *big.Int) *gfP2 {
	return &gfP2{x: gfPFromBig(x), y: gfPFromBig(y)}
}

// BigInts returns the canonical coordinate values (x, y).
func (e *gfP2) BigInts() (*big.Int, *big.Int) {
	return e.x.BigInt(), e.y.BigInt()
}

func (e *gfP2) String() string {
	return fmt.Sprintf("(%s, %s)", e.x.String(), e.y.String())
}

func (e *gfP2) Set(a *gfP2) *gfP2 {
	*e = *a
	return e
}

func (e *gfP2) SetZero() *gfP2 {
	*e = gfP2{}
	return e
}

func (e *gfP2) SetOne() *gfP2 {
	e.x.SetZero()
	e.y.SetOne()
	return e
}

// Minimal is retained from the big.Int core's API for the callers and tests
// that normalize before comparing; limb values are always reduced, so it is
// the identity.
func (e *gfP2) Minimal() *gfP2 { return e }

func (e *gfP2) IsZero() bool {
	return e.x.IsZero() && e.y.IsZero()
}

func (e *gfP2) IsOne() bool {
	return e.x.IsZero() && e.y.Equal(&rOne)
}

func (e *gfP2) Equal(a *gfP2) bool {
	return e.x.Equal(&a.x) && e.y.Equal(&a.y)
}

// Conjugate sets e = ȳ = −x·i + y, the image of a under the non-trivial
// automorphism of F_p²/F_p (which is also the p-power Frobenius).
func (e *gfP2) Conjugate(a *gfP2) *gfP2 {
	e.y = a.y
	gfpNeg(&e.x, &a.x)
	return e
}

func (e *gfP2) Neg(a *gfP2) *gfP2 {
	gfpNeg(&e.x, &a.x)
	gfpNeg(&e.y, &a.y)
	return e
}

func (e *gfP2) Add(a, b *gfP2) *gfP2 {
	gfpAdd(&e.x, &a.x, &b.x)
	gfpAdd(&e.y, &a.y, &b.y)
	return e
}

func (e *gfP2) Sub(a, b *gfP2) *gfP2 {
	gfpSub(&e.x, &a.x, &b.x)
	gfpSub(&e.y, &a.y, &b.y)
	return e
}

func (e *gfP2) Double(a *gfP2) *gfP2 {
	gfpDouble(&e.x, &a.x)
	gfpDouble(&e.y, &a.y)
	return e
}

// Mul sets e = a·b using Karatsuba (three base-field multiplications):
// (a.x·i + a.y)(b.x·i + b.y) = (a.x·b.y + a.y·b.x)·i + (a.y·b.y − a.x·b.x).
func (e *gfP2) Mul(a, b *gfP2) *gfP2 {
	var tx, t, vx, vy gfP
	gfpAdd(&tx, &a.x, &a.y)
	gfpAdd(&t, &b.x, &b.y)
	gfpMul(&tx, &tx, &t) // (ax+ay)(bx+by)

	gfpMul(&vx, &a.x, &b.x)
	gfpMul(&vy, &a.y, &b.y)

	gfpSub(&tx, &tx, &vx)
	gfpSub(&e.x, &tx, &vy)
	gfpSub(&e.y, &vy, &vx)
	return e
}

// MulScalar sets e = a·b where b is a base-field element.
func (e *gfP2) MulScalar(a *gfP2, b *gfP) *gfP2 {
	gfpMul(&e.x, &a.x, b)
	gfpMul(&e.y, &a.y, b)
	return e
}

// MulXi sets e = a·ξ where ξ = i + 3.
func (e *gfP2) MulXi(a *gfP2) *gfP2 {
	// (x·i + y)(i + 3) = (3x + y)·i + (3y − x)
	var tx, ty gfP
	gfpDouble(&tx, &a.x)
	gfpAdd(&tx, &tx, &a.x)
	gfpAdd(&tx, &tx, &a.y)

	gfpDouble(&ty, &a.y)
	gfpAdd(&ty, &ty, &a.y)
	gfpSub(&ty, &ty, &a.x)

	e.x = tx
	e.y = ty
	return e
}

// Square sets e = a² = 2·x·y·i + (y + x)(y − x), two multiplications.
func (e *gfP2) Square(a *gfP2) *gfP2 {
	var t1, t2, tx, ty gfP
	gfpSub(&t1, &a.y, &a.x)
	gfpAdd(&t2, &a.x, &a.y)
	gfpMul(&ty, &t1, &t2)

	gfpMul(&tx, &a.x, &a.y)
	gfpDouble(&tx, &tx)

	e.x = tx
	e.y = ty
	return e
}

// Invert sets e = a⁻¹ using 1/(x·i + y) = (−x·i + y)/(x² + y²).
func (e *gfP2) Invert(a *gfP2) *gfP2 {
	var t, t2 gfP
	gfpMul(&t, &a.y, &a.y)
	gfpMul(&t2, &a.x, &a.x)
	gfpAdd(&t, &t, &t2)
	t.Invert(&t)

	gfpNeg(&t2, &a.x)
	gfpMul(&e.x, &t2, &t)
	gfpMul(&e.y, &a.y, &t)
	return e
}

// Exp sets e = a^k by square-and-multiply.
func (e *gfP2) Exp(a *gfP2, k *big.Int) *gfP2 {
	sum := newGFp2().SetOne()
	base := newGFp2().Set(a)

	for i := k.BitLen() - 1; i >= 0; i-- {
		sum.Square(sum)
		if k.Bit(i) != 0 {
			sum.Mul(sum, base)
		}
	}
	return e.Set(sum)
}

// Sqrt sets e to a square root of a and reports whether a is a square in
// F_p². It uses the complex method valid for p ≡ 3 (mod 4), with the same
// branch structure as the retired big.Int implementation so deterministic
// point derivations (generators, hash-to-G2) keep their exact values.
func (e *gfP2) Sqrt(a *gfP2) (ok bool) {
	if a.IsZero() {
		e.SetZero()
		return true
	}
	// a1 = a^((p−3)/4); α = a1²·a; x0 = a1·a.
	exp := new(big.Int).Sub(P, big.NewInt(3))
	exp.Rsh(exp, 2)
	a1 := newGFp2().Exp(a, exp)
	alpha := newGFp2().Square(a1)
	alpha.Mul(alpha, a)
	x0 := newGFp2().Mul(a1, a)

	negOne := newGFp2().SetOne()
	negOne.Neg(negOne)

	cand := newGFp2()
	if alpha.Equal(negOne) {
		// e = i·x0 = (y + x·i)·i = −x + y·i … i.e. swap with a negation.
		cand.x = x0.y
		gfpNeg(&cand.y, &x0.x)
	} else {
		// b = (1 + α)^((p−1)/2); e = b·x0.
		b := newGFp2().Add(newGFp2().SetOne(), alpha)
		exp = new(big.Int).Sub(P, big.NewInt(1))
		exp.Rsh(exp, 1)
		b.Exp(b, exp)
		cand.Mul(b, x0)
	}

	check := newGFp2().Square(cand)
	if !check.Equal(a) {
		return false
	}
	e.Set(cand)
	return true
}
