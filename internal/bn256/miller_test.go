package bn256

import (
	"crypto/rand"
	"testing"
)

func TestMillerFinalizeMatchesPair(t *testing.T) {
	_, ga, _ := RandomG1(rand.Reader)
	_, gb, _ := RandomG2(rand.Reader)

	direct := Pair(ga, gb)
	split := Miller(ga, gb).Finalize()
	if !direct.Equal(split) {
		t.Fatal("Miller+Finalize != Pair")
	}
}

func TestPairingCheckProduct(t *testing.T) {
	// e(aP, Q) · e(−aP, Q) = 1.
	a, _ := RandomScalar(rand.Reader)
	p := new(G1).ScalarBaseMult(a)
	pNeg := new(G1).Neg(p)
	q := new(G2).Base()

	if !PairingCheck([]*G1{p, pNeg}, []*G2{q, q}) {
		t.Fatal("PairingCheck rejected a true product")
	}

	// e(aP, Q) · e(P, Q) ≠ 1 for generic a.
	base := new(G1).Base()
	if PairingCheck([]*G1{p, base}, []*G2{q, q}) {
		t.Fatal("PairingCheck accepted a false product")
	}
}

func TestPairingCheckDHTriple(t *testing.T) {
	// The classic co-DDH check: e(g1^a, g2^b) == e(g1^(ab), g2), phrased as
	// a product: e(g1^a, g2^b)·e(g1^(−ab), g2) = 1.
	a, _ := RandomScalar(rand.Reader)
	b, _ := RandomScalar(rand.Reader)
	ga := new(G1).ScalarBaseMult(a)
	gb := new(G2).ScalarBaseMult(b)

	ab := new(G1).ScalarMult(ga, b)
	abNeg := new(G1).Neg(ab)
	g2 := new(G2).Base()

	if !PairingCheck([]*G1{ga, abNeg}, []*G2{gb, g2}) {
		t.Fatal("co-DDH product check failed")
	}
}

func TestPairingCheckSkipsIdentity(t *testing.T) {
	inf := new(G1).SetInfinity()
	q := new(G2).Base()
	if !PairingCheck([]*G1{inf}, []*G2{q}) {
		t.Fatal("e(O, Q) should be 1")
	}
}
