// Package bn256 implements a particular bilinear group at roughly a 128-bit
// security level, built from scratch on math/big so that the repository
// depends only on the Go standard library.
//
// The group is a Barreto–Naehrig pairing-friendly elliptic curve defined by
// the BN parameter u = 1868033³ (the same curve as the original Go
// x/crypto/bn256 package). It consists of:
//
//   - G1, a prime-order subgroup of E(F_p) where E: y² = x³ + 3,
//   - G2, a prime-order subgroup of the sextic twist E'(F_p²) where
//     E': y² = x³ + 3/ξ with ξ = i + 3,
//   - GT, the order-n subgroup of F_p¹²*, and
//   - a non-degenerate bilinear map Pair: G1 × G2 → GT (the ate pairing).
//
// All derived constants (p, the group order n, the twist coefficient, the
// Frobenius twist factors) are computed from u at package initialization
// rather than transcribed, eliminating a whole class of constant-typo bugs.
// The package additionally implements hash-to-group for G1 and G2 and a
// slow, textbook Tate pairing used by the test suite to cross-check the
// optimized ate pairing.
//
// The API mirrors the classic bn256 interface (Add/ScalarMult/Marshal on
// wrapper types G1, G2, GT) but is written in multiplicative notation-aware
// terms for the PEACE protocol layer: "exponentiation" in the paper maps to
// ScalarMult here.
//
// This package is a cryptographic reproduction substrate, not a hardened
// production library: operations are not constant-time.
package bn256
