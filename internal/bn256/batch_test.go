package bn256

import (
	"crypto/rand"
	"math/big"
	"testing"
)

func randomScalarT(t *testing.T) *big.Int {
	t.Helper()
	k, err := RandomScalar(rand.Reader)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

// TestBaseTablesMatchGenericMul cross-checks the fixed-base window tables
// against the generic ladder for both generators across edge-case and
// random scalars.
func TestBaseTablesMatchGenericMul(t *testing.T) {
	scalars := []*big.Int{
		big.NewInt(0),
		big.NewInt(1),
		big.NewInt(2),
		big.NewInt(15),
		big.NewInt(16),
		big.NewInt(65535),
		new(big.Int).Sub(Order, big.NewInt(1)),
		new(big.Int).Set(Order),
		new(big.Int).Add(Order, big.NewInt(7)),
		new(big.Int).Neg(big.NewInt(5)),
		randomScalarT(t),
		randomScalarT(t),
	}
	for i, k := range scalars {
		wantG1 := &G1{p: newCurvePoint().mulGeneric(curveGen, new(big.Int).Mod(k, Order))}
		gotG1 := new(G1).ScalarBaseMult(k)
		if !gotG1.Equal(wantG1) {
			t.Errorf("scalar %d: G1 table mul mismatch for k=%v", i, k)
		}
		wantG2 := &G2{p: newTwistPoint().mulGeneric(twistGen, new(big.Int).Mod(k, Order))}
		gotG2 := new(G2).ScalarBaseMult(k)
		if !gotG2.Equal(wantG2) {
			t.Errorf("scalar %d: G2 table mul mismatch for k=%v", i, k)
		}
	}
}

// TestG1G2TablesMatchScalarMult checks user-built tables for non-generator
// bases.
func TestG1G2TablesMatchScalarMult(t *testing.T) {
	base1 := new(G1).ScalarBaseMult(big.NewInt(99991))
	base2 := new(G2).ScalarBaseMult(big.NewInt(1234577))
	t1 := NewG1Table(base1)
	t2 := NewG2Table(base2)

	for i := 0; i < 4; i++ {
		k := randomScalarT(t)
		want1 := new(G1).ScalarMult(base1, k)
		if got := t1.Mul(new(G1), k); !got.Equal(want1) {
			t.Errorf("G1Table mismatch at iteration %d", i)
		}
		want2 := new(G2).ScalarMult(base2, k)
		if got := t2.Mul(new(G2), k); !got.Equal(want2) {
			t.Errorf("G2Table mismatch at iteration %d", i)
		}
	}
	if got := t1.Mul(new(G1), big.NewInt(0)); !got.IsInfinity() {
		t.Error("G1Table k=0 should yield the identity")
	}
}

// TestWNAFDigits checks that the digit expansion reconstructs the scalar
// and respects the non-adjacency/oddness invariants.
func TestWNAFDigits(t *testing.T) {
	for _, k := range []*big.Int{
		big.NewInt(1 << 20),
		big.NewInt(0xdeadbeef),
		randomScalarT(t),
		new(big.Int).Sub(Order, big.NewInt(1)),
	} {
		digits := wnafDigits(k, 5)
		recon := new(big.Int)
		for i := len(digits) - 1; i >= 0; i-- {
			recon.Lsh(recon, 1)
			recon.Add(recon, big.NewInt(int64(digits[i])))
		}
		if recon.Cmp(k) != 0 {
			t.Fatalf("wNAF reconstruction mismatch for %v", k)
		}
		for i, d := range digits {
			if d == 0 {
				continue
			}
			if d%2 == 0 {
				t.Fatalf("even non-zero wNAF digit %d at %d", d, i)
			}
			if d > 15 || d < -15 {
				t.Fatalf("wNAF digit %d out of range at %d", d, i)
			}
		}
	}
}

// TestPreparedG2MatchesMiller checks prepared evaluation against the
// reference Miller loop and the full pairing.
func TestPreparedG2MatchesMiller(t *testing.T) {
	a := randomScalarT(t)
	b := randomScalarT(t)
	p := new(G1).ScalarBaseMult(a)
	q := new(G2).ScalarBaseMult(b)

	pq := PrepareG2(q)
	if got, want := pq.Miller(p), Miller(p, q); !got.Equal(want) {
		t.Fatal("PreparedG2.Miller disagrees with Miller")
	}
	if got, want := pq.Pair(p), Pair(p, q); !got.Equal(want) {
		t.Fatal("PreparedG2.Pair disagrees with Pair")
	}

	// Identity handling on both sides.
	inf1 := new(G1).SetInfinity()
	if !pq.Miller(inf1).IsOne() {
		t.Error("prepared Miller at G1 identity should be one")
	}
	pinf := PrepareG2(new(G2).SetInfinity())
	if !pinf.Miller(p).IsOne() {
		t.Error("prepared Miller of G2 identity should be one")
	}
	if !pinf.Pair(p).IsOne() {
		t.Error("prepared Pair of G2 identity should be one")
	}
}

// TestPreparedG2ConcurrentUse exercises a shared PreparedG2 from several
// goroutines (run under -race in make ci).
func TestPreparedG2ConcurrentUse(t *testing.T) {
	q := new(G2).ScalarBaseMult(randomScalarT(t))
	pq := PrepareG2(q)
	p := new(G1).ScalarBaseMult(randomScalarT(t))
	want := Pair(p, q)

	done := make(chan bool, 8)
	for i := 0; i < 8; i++ {
		go func() {
			done <- pq.Pair(p).Equal(want)
		}()
	}
	for i := 0; i < 8; i++ {
		if !<-done {
			t.Fatal("concurrent prepared pairing mismatch")
		}
	}
}

// TestMillerCombinedMatchesProduct checks the shared-squaring multi-Miller
// evaluation against the product of independent prepared Miller loops.
func TestMillerCombinedMatchesProduct(t *testing.T) {
	preps := make([]*PreparedG2, 3)
	points := make([]*G1, 3)
	want := new(GT).SetOne()
	for i := range preps {
		p := new(G1).ScalarBaseMult(randomScalarT(t))
		q := new(G2).ScalarBaseMult(randomScalarT(t))
		preps[i] = PrepareG2(q)
		points[i] = p
		want.Add(want, Miller(p, q))
	}
	if got := MillerCombined(preps, points); !got.Equal(want) {
		t.Fatal("MillerCombined disagrees with product of Miller loops")
	}

	// Identity entries on either side are skipped.
	withInf := append([]*PreparedG2{PrepareG2(new(G2).SetInfinity())}, preps...)
	ptsInf := append([]*G1{new(G1).Base()}, points...)
	if got := MillerCombined(withInf, ptsInf); !got.Equal(want) {
		t.Fatal("MillerCombined should skip prepared identities")
	}
	ptsInf[0] = new(G1).SetInfinity()
	withInf[0] = PrepareG2(new(G2).Base())
	if got := MillerCombined(withInf, ptsInf); !got.Equal(want) {
		t.Fatal("MillerCombined should skip G1 identities")
	}

	// Empty input finalizes to one.
	if !MillerCombined(nil, nil).Finalize().IsOne() {
		t.Fatal("empty MillerCombined should be one")
	}
}

// TestPairBatchMatchesProduct checks that the shared-final-exponentiation
// product equals the product of individually finalized pairings.
func TestPairBatchMatchesProduct(t *testing.T) {
	pairs := make([]Pairing, 4)
	want := new(GT).SetOne()
	for i := range pairs {
		p := new(G1).ScalarBaseMult(randomScalarT(t))
		q := new(G2).ScalarBaseMult(randomScalarT(t))
		pairs[i] = Pairing{G1: p, G2: q}
		want.Add(want, Pair(p, q))
	}
	if got := PairBatch(pairs); !got.Equal(want) {
		t.Fatal("PairBatch disagrees with product of Pair calls")
	}

	// Identity pairs contribute nothing.
	withIdentity := append([]Pairing{{G1: new(G1).SetInfinity(), G2: new(G2).Base()}}, pairs...)
	if got := PairBatch(withIdentity); !got.Equal(want) {
		t.Fatal("PairBatch should skip identity pairs")
	}

	// Empty batch is the identity.
	if !PairBatch(nil).IsOne() {
		t.Fatal("empty PairBatch should be one")
	}

	// A pairing and its inverse cancel under one final exponentiation.
	p := new(G1).ScalarBaseMult(randomScalarT(t))
	q := new(G2).ScalarBaseMult(randomScalarT(t))
	cancel := []Pairing{{G1: p, G2: q}, {G1: new(G1).Neg(p), G2: q}}
	if !PairBatch(cancel).IsOne() {
		t.Fatal("e(P,Q)·e(−P,Q) should finalize to one")
	}
}
