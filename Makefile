# PEACE reproduction — common development targets.

GO ?= go

.PHONY: all build test race bench experiments examples vet fmt cover clean ci

all: build test

# ci is the full gate: static checks, build, tests, and the race detector
# over every package with concurrent paths (batch verifier, ingest queue,
# mesh forwarding, relay).
ci:
	$(GO) vet ./...
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/ ./internal/mesh/ ./internal/anonrelay/ ./internal/sgs/

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/mesh/ ./internal/anonrelay/ ./internal/sgs/

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/peacebench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/audittrace
	$(GO) run ./examples/dosdefense
	$(GO) run ./examples/keyrotation
	$(GO) run ./examples/anoncomm
	$(GO) run ./examples/citymesh

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
