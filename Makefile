# PEACE reproduction — common development targets.

GO ?= go

.PHONY: all build test race bench bench-smoke experiments examples vet fmt cover clean ci fuzz staticcheck metrics-lint meshd-loopback meshd-drill chaos-soak metro-soak attack-soak

all: build test

# ci is the full gate: static checks, build, tests, the race detector
# over every package with concurrent paths (batch verifier, ingest queue,
# transport datapath, mesh forwarding, relay), and a short fuzz smoke of
# every wire-facing decoder.
ci:
	$(GO) vet ./...
	$(MAKE) staticcheck
	$(MAKE) metrics-lint
	@fmtout="$$(gofmt -l .)"; if [ -n "$$fmtout" ]; then \
		echo "gofmt needed on:"; echo "$$fmtout"; exit 1; fi
	$(GO) build ./...
	$(GO) test ./...
	$(GO) test -race ./internal/core/ ./internal/mesh/ ./internal/anonrelay/ ./internal/sgs/ ./internal/transport/ ./internal/transport/batchio/ ./internal/bn256/ ./internal/chaos/ ./internal/backbone/ ./internal/metrics/ ./internal/puzzle/ ./internal/revocation/
	$(MAKE) bench-smoke
	$(MAKE) fuzz
	$(MAKE) chaos-soak
	$(MAKE) metro-soak
	$(MAKE) attack-soak

# fuzz smoke: each wire-facing decoder gets a short randomized run, plus a
# differential fuzz of the Montgomery field core against big.Int.
fuzz:
	$(GO) test ./internal/bn256/ -run='^$$' -fuzz='^FuzzGfPvsBigInt$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzDecodeFrame$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzDecodeMessage$$' -fuzztime=10s
	$(GO) test ./internal/core/ -run='^$$' -fuzz='^FuzzUnmarshalBeacon$$' -fuzztime=10s
	$(GO) test ./internal/core/ -run='^$$' -fuzz='^FuzzUnmarshalAccessRequest$$' -fuzztime=10s
	$(GO) test ./internal/core/ -run='^$$' -fuzz='^FuzzUnmarshalPeerHello$$' -fuzztime=10s
	$(GO) test ./internal/revocation/ -run='^$$' -fuzz='^FuzzUnmarshalSnapshot$$' -fuzztime=10s
	$(GO) test ./internal/revocation/ -run='^$$' -fuzz='^FuzzUnmarshalDelta$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalPingBody$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalPongBody$$' -fuzztime=10s
	$(GO) test ./internal/core/ -run='^$$' -fuzz='^FuzzUnmarshalDataFrame$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalTicket$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalResumeRequest$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalRouterHello$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalRouterWelcome$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalLinkEnvelope$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalGossipBody$$' -fuzztime=10s
	$(GO) test ./internal/transport/ -run='^$$' -fuzz='^FuzzUnmarshalRelayBody$$' -fuzztime=10s
	$(GO) test ./internal/puzzle/ -run='^$$' -fuzz='^FuzzUnmarshalPuzzle$$' -fuzztime=10s
	$(GO) test ./internal/puzzle/ -run='^$$' -fuzz='^FuzzVerifySolution$$' -fuzztime=10s
	$(GO) test ./internal/core/ -run='^$$' -fuzz='^FuzzPeekAccessRequest$$' -fuzztime=10s

# metrics-lint gates the instrument namespace: the registry itself
# panics on non-snake_case or kind-conflicting names at registration, and
# the lint tests instantiate every layer's production registry to prove
# all names are snake_case, unique, and collision-free across the
# registries meshd merges into one /metrics exposition.
metrics-lint:
	$(GO) test ./internal/metrics/ -run='^(TestRegistrationRules|TestInstrumentNamingLint)$$' -count=1

# staticcheck runs when the binary is present and is skipped (loudly) when
# it is not — the container image does not ship it and ci must not fetch
# tools from the network.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; \
	fi

# meshd-loopback is the transport acceptance drill: 100 concurrent users
# through full M.1–M.3 over real UDP loopback at 5% induced datagram loss.
meshd-loopback:
	$(GO) run ./cmd/meshd -mode loopback -users 100 -loss 0.05

# meshd-drill is the revocation acceptance drill: the URL grows by two
# entries per round across four epochs while eight clients re-attach;
# clients must converge via deltas after one cold-start snapshot per list.
meshd-drill:
	$(GO) run ./cmd/meshd -mode drill -users 8 -rounds 4 -revoke 2

# chaos-soak is the self-healing acceptance drill: 100 maintained clients
# under 10% loss + 5% corruption + 2% duplication survive a mid-run
# revocation bump, a server restart and a 5s partition of a third of the
# fleet, and every client must re-establish with zero invariant
# violations. Deterministic fault decisions from -seed.
chaos-soak:
	$(GO) run ./cmd/meshd -mode chaos -users 100 -seed 42 -storm 2s -partition 5s

# metro-soak is the roaming acceptance drill: 8 backbone routers under
# lossy/corrupting/duplicating inter-router links, one router partitioned
# mid-wave, while 200 users each make 3 cross-router moves on resumption
# tickets. Gate: 100% session continuity (exactly one pairing per user,
# zero resume fallbacks) and every router refuses a revocation rollback
# after a fleet-wide epoch bump.
metro-soak:
	$(GO) run ./cmd/meshd -mode metro -routers 8 -users 200 -moves 3 -soak -partition 2s

# attack-soak is the adaptive-DoS acceptance drill: a seeded attacker
# fleet (spoofed-source garbage floods, solution-less skeleton M.2s,
# cross-source solution replays) storms the attach ingress an order of
# magnitude above the legitimate rate while 16 legit clients hold and
# establish sessions through it. Gate: ≥95% of the legit fleet keeps a
# working session, demanded difficulty ratchets ≥2 steps during the storm
# and decays to 0 within the bound after it, replayed solutions are
# refused, and the flood buys the attacker no pairings.
attack-soak:
	$(GO) run ./cmd/meshd -mode attack -users 16 -seed 42 -storm 2s

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/mesh/ ./internal/anonrelay/ ./internal/sgs/ ./internal/transport/ ./internal/transport/batchio/ ./internal/bn256/ ./internal/chaos/ ./internal/backbone/ ./internal/metrics/ ./internal/puzzle/ ./internal/revocation/

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke compiles and runs every transport/wire benchmark once with
# allocation accounting, then gates on the steady-state paths staying
# allocation-free: TestSteadyStateDecodeAllocs pins the decode side,
# TestDataPlaneAllocs pins the whole batched ingest+egress round trip at
# 0 allocs/op, and TestSealOpenAllocs pins the in-place session crypto
# (the -benchtime=1x pass catches benchmarks that rot).
bench-smoke:
	$(GO) test ./internal/transport/ ./internal/wire/ -run='^(TestSteadyStateDecodeAllocs|TestDataPlaneAllocs)$$' -bench=. -benchmem -benchtime=1x
	$(GO) test ./internal/core/ -run='^TestSealOpenAllocs$$' -v -count=1

experiments:
	$(GO) run ./cmd/peacebench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/audittrace
	$(GO) run ./examples/dosdefense
	$(GO) run ./examples/keyrotation
	$(GO) run ./examples/anoncomm
	$(GO) run ./examples/citymesh

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
