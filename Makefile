# PEACE reproduction — common development targets.

GO ?= go

.PHONY: all build test race bench experiments examples vet fmt cover clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ ./internal/mesh/ ./internal/anonrelay/ ./internal/sgs/

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/peacebench

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/audittrace
	$(GO) run ./examples/dosdefense
	$(GO) run ./examples/keyrotation
	$(GO) run ./examples/anoncomm
	$(GO) run ./examples/citymesh

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
