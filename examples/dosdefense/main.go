// Command dosdefense reproduces the DoS analysis of paper Section V.A on
// the simulator: an attacker floods a mesh router with bogus access
// requests. Without client puzzles every bogus M.2 costs the router an
// expensive group-signature verification (pairings); with puzzles enabled
// the flood is shed after one cheap hash check, while the legitimate user
// still gets in by solving the puzzle.
//
// Run with:
//
//	go run ./examples/dosdefense
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/peace-mesh/peace"
	"github.com/peace-mesh/peace/internal/mesh"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func scenario(defense bool, floodSize int) (router mesh.RouterStats, legitAttached bool, err error) {
	d, err := mesh.NewDeployment(mesh.DeploymentSpec{
		Seed:             99,
		Groups:           1,
		KeysPerGroup:     4,
		Routers:          1,
		PuzzleDifficulty: 8,
	})
	if err != nil {
		return mesh.RouterStats{}, false, err
	}
	if _, err := d.AddUser("citizen", peace.GroupID("grp-0"), "MR-0", true); err != nil {
		return mesh.RouterStats{}, false, err
	}
	hop := mesh.Link{Latency: 2 * time.Millisecond}
	d.Net.Connect("citizen", "MR-0", hop)

	attacker := mesh.NewInjector(d.Net, "attacker", "MR-0")
	d.Net.Connect("attacker", "MR-0", hop)

	d.Routers["MR-0"].Router().SetDoSDefense(defense)
	d.Routers["MR-0"].StartBeacons(250*time.Millisecond, 8)

	// Give the attacker a beacon to copy g^{r_R} from, then flood.
	d.Net.RunFor(300 * time.Millisecond)
	attacker.Flood(floodSize, time.Millisecond)
	d.Net.RunFor(10 * time.Second)

	return d.Routers["MR-0"].Stats(), d.Users["citizen"].Attached(), nil
}

func run() error {
	const flood = 200
	fmt.Println("== DoS defense: client puzzles (Juels–Brainard) ==")
	fmt.Printf("flood size: %d bogus access requests\n\n", flood)

	for _, defense := range []bool{false, true} {
		st, attached, err := scenario(defense, flood)
		if err != nil {
			return err
		}
		mode := "OFF"
		if defense {
			mode = "ON"
		}
		fmt.Printf("puzzles %-3s  requests=%-4d expensive-verifications=%-4d shed-cheaply=%-4d legit-attached=%v\n",
			mode, st.Core.RequestsSeen, st.Core.ExpensiveVerifications, st.Core.RejectedPuzzle, attached)
	}

	fmt.Println("\nWith puzzles ON the router performs (almost) no pairing work for the")
	fmt.Println("flood — each bogus request dies on a single SHA-256 check — while the")
	fmt.Println("legitimate citizen, who spends ~2^8 hashes per puzzle, still attaches.")
	return nil
}
