// Command citymesh simulates the paper's motivating scenario: a
// metropolitan mesh with a wired-backbone router, a chain of citizens
// whose uplinks relay through each other, a passive eavesdropper covering
// the whole city, and a phishing router. It prints per-user attach
// delays, relay statistics and what the adversaries achieved.
//
// Run with:
//
//	go run ./examples/citymesh
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/peace-mesh/peace"
	"github.com/peace-mesh/peace/internal/mesh"
	"github.com/peace-mesh/peace/internal/revocation"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== citymesh: metro-scale WMN simulation ==")

	d, err := mesh.NewDeployment(mesh.DeploymentSpec{
		Seed:         2026,
		Groups:       2,
		KeysPerGroup: 16,
		Routers:      1,
	})
	if err != nil {
		return err
	}

	// Five citizens in a chain behind MR-0; hops are 5 ms radio links.
	citizens := []mesh.NodeID{"alice", "bob", "carol", "dave", "erin"}
	hop := mesh.Link{Latency: 5 * time.Millisecond}
	for i, id := range citizens {
		nextHop := mesh.NodeID("MR-0")
		group := "grp-0"
		if i%2 == 1 {
			group = "grp-1" // mixed employers, per the identity model
		}
		if i > 0 {
			nextHop = citizens[i-1]
		}
		if _, err := d.AddUser(id, peace.GroupID(group), nextHop, true); err != nil {
			return err
		}
	}
	d.BuildChain("MR-0", citizens, hop)

	// The city-wide passive adversary.
	eve := mesh.NewEavesdropper(d.Net)

	// A phishing router parked next to alice and bob. It replays epoch
	// refs captured from legitimate beacons; it cannot forge the cert.
	legit := d.Routers["MR-0"].Router()
	urlSnap, ok := legit.RevocationSnapshot(revocation.ListURL)
	if !ok {
		return fmt.Errorf("router has no URL snapshot")
	}
	crlSnap, ok := legit.RevocationSnapshot(revocation.ListCRL)
	if !ok {
		return fmt.Errorf("router has no CRL snapshot")
	}
	rogue, err := mesh.NewRogueRouter(d.Net, "MR-evil", urlSnap.Ref(), crlSnap.Ref())
	if err != nil {
		return err
	}
	d.Net.Connect("MR-evil", "alice", hop)
	d.Net.Connect("MR-evil", "bob", hop)

	// Go: one beacon round attaches everyone; the rogue beacons too.
	d.Routers["MR-0"].StartBeacons(500*time.Millisecond, 4)
	d.Net.Schedule(100*time.Millisecond, func() {
		if err := rogue.BroadcastPhishingBeacon(); err != nil {
			log.Printf("rogue beacon: %v", err)
		}
	})
	d.Net.RunFor(5 * time.Second)

	fmt.Println("\n-- attachment --")
	for _, id := range citizens {
		st := d.Users[id].Stats()
		fmt.Printf("  %-6s attached=%-5v delay=%-8v beacons=%d rejected=%d\n",
			id, st.Attached, st.AttachDelay, st.BeaconsSeen, st.RejectedBeacons)
	}

	// Pairwise peer authentication down the chain, then multihop data.
	fmt.Println("\n-- multihop relay --")
	for i := len(citizens) - 1; i > 0; i-- {
		if err := d.Users[citizens[i]].AuthenticateWithPeer(citizens[i-1]); err != nil {
			return err
		}
	}
	d.Net.RunFor(2 * time.Second)

	for _, id := range citizens {
		if err := d.Users[id].SendData([]byte("hello from " + string(id))); err != nil {
			return err
		}
	}
	d.Net.RunFor(2 * time.Second)

	rs := d.Routers["MR-0"].Stats()
	fmt.Printf("  router delivered %d data frames (rejected %d)\n", rs.DataDelivered, rs.DataRejected)
	for _, id := range citizens {
		st := d.Users[id].Stats()
		fmt.Printf("  %-6s relayed=%d unauth-drops=%d peer-sessions=%d\n",
			id, st.FramesRelayed, st.RelayDropsUnauth, st.PeerSessions)
	}

	fmt.Println("\n-- adversaries --")
	fmt.Printf("  rogue router lured %d access requests (want 0)\n", rogue.Lured)
	m := d.Net.Metrics()
	fmt.Printf("  eavesdropper captured %d frames, %d of them M.2 signatures —\n",
		len(eve.Frames), len(eve.AccessRequestSignatures()))
	fmt.Println("  every session identifier is a fresh random pair; no uid ever on air")
	fmt.Printf("  frames lost to radio: %d\n", m.FramesLost)

	fmt.Println("\n-- traffic by message type --")
	for _, k := range []mesh.FrameKind{
		mesh.KindBeacon, mesh.KindAccessRequest, mesh.KindAccessConfirm,
		mesh.KindPeerHello, mesh.KindPeerResponse, mesh.KindPeerConfirm, mesh.KindData,
	} {
		fmt.Printf("  %-22s frames=%-4d bytes=%d\n", k, m.FramesByKind[k], m.BytesByKind[k])
	}
	return nil
}
