// Command anoncomm demonstrates the upper-layer anonymous-communication
// application PEACE's conclusion motivates: a three-hop onion circuit in
// which every hop is keyed by PEACE's anonymous user–user AKA. A citizen
// submits a report to a drop-box relay; no relay can identify the sender,
// and intermediates never see the payload.
//
// Run with:
//
//	go run ./examples/anoncomm
package main

import (
	"fmt"
	"log"

	"github.com/peace-mesh/peace"
	"github.com/peace-mesh/peace/internal/anonrelay"
	"github.com/peace-mesh/peace/internal/bn256"
)

type directCourier struct {
	relays map[anonrelay.RelayID]*anonrelay.Relay
	links  int
}

func (d *directCourier) Exchange(to anonrelay.RelayID, cell []byte) ([]byte, error) {
	d.links++
	r, ok := d.relays[to]
	if !ok {
		return nil, fmt.Errorf("no relay %q", to)
	}
	return r.Handle(cell)
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := peace.Config{}
	fmt.Println("== anonymous communication over PEACE ==")

	no, err := peace.NewNetworkOperator(cfg)
	if err != nil {
		return err
	}
	ttp, err := peace.NewTTP(cfg, no.Authority())
	if err != nil {
		return err
	}
	gm, err := peace.NewGroupManager(cfg, "citizens", no.Authority())
	if err != nil {
		return err
	}
	if err := no.RegisterUserGroup(gm, ttp, 8); err != nil {
		return err
	}
	newUser := func(name string) (*peace.User, error) {
		u, err := peace.NewUser(cfg, peace.Identity{Essential: peace.UserID(name)}, no.Authority(), no.GroupPublicKey())
		if err != nil {
			return nil, err
		}
		return u, peace.EnrollUser(u, gm, ttp)
	}

	courier := &directCourier{relays: make(map[anonrelay.RelayID]*anonrelay.Relay)}
	for _, id := range []string{"entry", "middle", "dropbox"} {
		u, err := newUser("relay:" + id)
		if err != nil {
			return err
		}
		courier.relays[anonrelay.RelayID(id)] = anonrelay.NewRelay(anonrelay.RelayID(id), u, courier)
	}
	source, err := newUser("whistleblower <essential-id>")
	if err != nil {
		return err
	}
	fmt.Println("1. three relays and one source enrolled (all anonymous subscribers)")

	gen := bn256.HashToG1([]byte("beacon generator"))
	circuit := anonrelay.NewCircuit(source, courier, gen)
	for _, hop := range []anonrelay.RelayID{"entry", "middle", "dropbox"} {
		if err := circuit.Extend(hop); err != nil {
			return fmt.Errorf("extend %s: %w", hop, err)
		}
		fmt.Printf("2. circuit extended to %-8s (anonymous peer AKA, %d hop(s))\n", hop, circuit.Len())
	}

	report := []byte("observed incident at 5th & main, 22:40")
	if err := circuit.Send(report); err != nil {
		return err
	}
	delivered := courier.relays["dropbox"].Delivered()
	fmt.Printf("3. report delivered at the drop box: %q\n", delivered[0])
	fmt.Println("4. entry relay knows the source's radio address but not the payload;")
	fmt.Println("   the drop box has the payload but only an anonymous group signature")
	fmt.Println("   behind it — accountability still holds: under a court order, the")
	fmt.Println("   operator + group manager can trace the circuit-building signatures.")
	fmt.Println("done.")
	return nil
}
