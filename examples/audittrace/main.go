// Command audittrace demonstrates PEACE's sophisticated privacy model
// (paper Sections III.C and IV.D) on a dispute scenario:
//
//  1. a user misbehaves during an authenticated session;
//  2. the network operator audits the logged M.2 and learns ONLY the user
//     group (nonessential attribute information);
//  3. the operator revokes the key, locking the attacker out;
//  4. the law authority — with the group manager's cooperation — completes
//     the trace to the user's essential identity, checked against the
//     non-repudiation receipt chain;
//  5. the group manager alone is shown to be unable to attribute anything.
//
// Run with:
//
//	go run ./examples/audittrace
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/peace-mesh/peace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := peace.Config{}
	fmt.Println("== audit & trace walk-through ==")

	no, err := peace.NewNetworkOperator(cfg)
	if err != nil {
		return err
	}
	ttp, err := peace.NewTTP(cfg, no.Authority())
	if err != nil {
		return err
	}

	// Two user groups: a company and a university.
	company, err := peace.NewGroupManager(cfg, "company-xyz", no.Authority())
	if err != nil {
		return err
	}
	university, err := peace.NewGroupManager(cfg, "university-z", no.Authority())
	if err != nil {
		return err
	}
	for _, gm := range []*peace.GroupManager{company, university} {
		if err := no.RegisterUserGroup(gm, ttp, 8); err != nil {
			return err
		}
	}

	// Enroll three users; mallory is the one who will misbehave.
	users := map[string]*peace.User{}
	for name, gm := range map[string]*peace.GroupManager{
		"alice":   company,
		"bob":     university,
		"mallory": company,
	} {
		u, err := peace.NewUser(cfg, peace.Identity{
			Essential:  peace.UserID(name + " <essential-id>"),
			Attributes: []peace.Attribute{{Group: gm.ID(), Role: "member"}},
		}, no.Authority(), no.GroupPublicKey())
		if err != nil {
			return err
		}
		if err := peace.EnrollUser(u, gm, ttp); err != nil {
			return err
		}
		users[name] = u
	}

	router, err := peace.NewMeshRouter(cfg, "MR-1", no.Authority(), no.GroupPublicKey())
	if err != nil {
		return err
	}
	routerCert, err := no.EnrollRouter("MR-1", router.Public())
	if err != nil {
		return err
	}
	router.SetCertificate(routerCert)
	if err := refresh(no, router, users); err != nil {
		return err
	}

	// Mallory authenticates (anonymously) and the router logs the M.2.
	beacon, err := router.Beacon()
	if err != nil {
		return err
	}
	loggedM2, err := users["mallory"].HandleBeacon(beacon, "company-xyz")
	if err != nil {
		return err
	}
	if _, _, err := router.HandleAccessRequest(loggedM2); err != nil {
		return err
	}
	fmt.Println("1. mallory authenticated anonymously; the router logged M.2")
	fmt.Println("   (the router knows only: \"some legitimate subscriber\")")

	// The session turns out to be abusive. The operator audits.
	audit, err := no.Audit(loggedM2)
	if err != nil {
		return err
	}
	fmt.Printf("2. NO audit result: responsible party is a member of %q\n", audit.Group)
	fmt.Printf("   (scanned %d revocation tokens; learned NOTHING else —\n", audit.TokensScanned)
	fmt.Println("   no essential attributes, no uid; accountability with privacy)")

	// Revocation: the audited key goes on the URL.
	if err := no.RevokeAudited(audit); err != nil {
		return err
	}
	if err := refresh(no, router, users); err != nil {
		return err
	}
	beacon2, err := router.Beacon()
	if err != nil {
		return err
	}
	m2again, err := users["mallory"].HandleBeacon(beacon2, "company-xyz")
	if err != nil {
		return err
	}
	_, _, err = router.HandleAccessRequest(m2again)
	if !errors.Is(err, peace.ErrRevokedUser) {
		return fmt.Errorf("expected revocation to lock mallory out, got %v", err)
	}
	fmt.Println("3. key revoked via URL: mallory's next access attempt is refused")

	// Severe case: the law authority traces the session with GM help.
	la := peace.NewLawAuthority(company, university)
	trace, err := la.Trace(no, loggedM2)
	if err != nil {
		return err
	}
	fmt.Printf("4. law authority trace (NO + GM jointly): uid = %q\n", trace.User)
	fmt.Printf("   receipt chain verified: %v (non-repudiation holds)\n", trace.ReceiptVerified)

	// And the counterfactual: a GM alone attributes nothing. The GM holds
	// (grp, x_j) but no A_{i,j}, so it cannot even test a transcript.
	fmt.Println("5. the group manager alone cannot link the session to anyone:")
	fmt.Println("   it never sees A_{i,j}; only the NO's grt scan can match (T1, T2)")

	// An operator alone cannot produce the uid either.
	laWithoutGM := peace.NewLawAuthority()
	if _, err := laWithoutGM.Trace(no, loggedM2); err == nil {
		return fmt.Errorf("trace should fail without GM cooperation")
	}
	fmt.Println("6. trace WITHOUT the GM fails: neither NO nor GM can de-anonymize alone")
	fmt.Println("done.")
	return nil
}

// refresh distributes the operator's current revocation epoch: signed
// bundles to the router, matching snapshots to the users.
func refresh(no *peace.NetworkOperator, router *peace.MeshRouter, users map[string]*peace.User) error {
	crl, url, err := no.RevocationBundles()
	if err != nil {
		return err
	}
	if err := router.UpdateRevocations(crl, url); err != nil {
		return err
	}
	for _, u := range users {
		for _, snap := range []*peace.RevocationSnapshot{crl.Snapshot, url.Snapshot} {
			if err := u.InstallRevocationSnapshot(snap); err != nil {
				return err
			}
		}
	}
	return nil
}
