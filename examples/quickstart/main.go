// Command quickstart walks through the PEACE lifecycle end to end on a
// single machine: scheme setup, user enrollment through the GM/TTP split
// channel, the three-message user–router authenticated key agreement, and
// encrypted session traffic.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"crypto/rand"
	"fmt"
	"log"

	"github.com/peace-mesh/peace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := peace.Config{}

	// ------------------------------------------------------------------
	// Scheme setup (paper Section IV.A).
	// ------------------------------------------------------------------
	fmt.Println("== PEACE quickstart ==")
	no, err := peace.NewNetworkOperator(cfg)
	if err != nil {
		return err
	}
	fmt.Println("1. network operator created (γ, NSK generated)")

	ttp, err := peace.NewTTP(cfg, no.Authority())
	if err != nil {
		return err
	}
	gm, err := peace.NewGroupManager(cfg, "company-xyz", no.Authority())
	if err != nil {
		return err
	}
	if err := no.RegisterUserGroup(gm, ttp, 16); err != nil {
		return err
	}
	fmt.Println("2. user group \"company-xyz\" registered: 16 SDH tuples issued,")
	fmt.Println("   (grp, x_j) → GM and masked A_j → TTP, receipts collected")

	// ------------------------------------------------------------------
	// User enrollment: the user assembles gsk from the two half-channels.
	// ------------------------------------------------------------------
	alice, err := peace.NewUser(cfg, peace.Identity{
		Essential:  "alice <ssn:000-00-0001>",
		Attributes: []peace.Attribute{{Group: "company-xyz", Role: "engineer"}},
	}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		return err
	}
	if err := peace.EnrollUser(alice, gm, ttp); err != nil {
		return err
	}
	fmt.Printf("3. %s enrolled; holds gsk for groups %v\n", "alice", alice.Groups())

	// ------------------------------------------------------------------
	// Mesh router provisioning.
	// ------------------------------------------------------------------
	router, err := peace.NewMeshRouter(cfg, "MR-17", no.Authority(), no.GroupPublicKey())
	if err != nil {
		return err
	}
	routerCert, err := no.EnrollRouter("MR-17", router.Public())
	if err != nil {
		return err
	}
	router.SetCertificate(routerCert)
	crl, url, err := no.RevocationBundles()
	if err != nil {
		return err
	}
	if err := router.UpdateRevocations(crl, url); err != nil {
		return err
	}
	// Alice bootstraps the same revocation epoch (in a deployment the
	// transport layer fetches this — see internal/transport).
	for _, snap := range []*peace.RevocationSnapshot{crl.Snapshot, url.Snapshot} {
		if err := alice.InstallRevocationSnapshot(snap); err != nil {
			return err
		}
	}
	fmt.Printf("4. mesh router MR-17 certified; revocation epoch %d installed\n", url.Snapshot.Epoch)

	// ------------------------------------------------------------------
	// User–router AKA (paper Section IV.B): M.1 → M.2 → M.3.
	// ------------------------------------------------------------------
	beacon, err := router.Beacon()
	if err != nil {
		return err
	}
	fmt.Printf("5. M.1 beacon broadcast (%d bytes on the wire)\n", len(beacon.Marshal()))

	m2, err := alice.HandleBeacon(beacon, "company-xyz")
	if err != nil {
		return err
	}
	fmt.Printf("6. M.2 access request sent: anonymous group signature, %d bytes\n", len(m2.Sig.Bytes()))

	m3, routerSession, err := router.HandleAccessRequest(m2)
	if err != nil {
		return err
	}
	fmt.Println("7. router verified the group signature (knows alice is *a* subscriber,")
	fmt.Println("   not *which* one), checked the URL, and confirmed with M.3")

	userSession, err := alice.HandleAccessConfirm(m3)
	if err != nil {
		return err
	}
	fmt.Printf("8. mutual authentication complete; session %s established\n", userSession.ID)

	// ------------------------------------------------------------------
	// Hybrid session traffic: AES-GCM uplink, HMAC-only frame, both bound
	// to the session identifier (g^{r_R}, g^{r_j}).
	// ------------------------------------------------------------------
	frame, err := userSession.SealData(rand.Reader, []byte("GET / HTTP/1.1"))
	if err != nil {
		return err
	}
	pt, err := routerSession.OpenData(frame)
	if err != nil {
		return err
	}
	fmt.Printf("9. encrypted uplink delivered: %q\n", pt)

	macFrame := userSession.AuthData([]byte("telemetry ping"))
	if _, err := routerSession.OpenData(macFrame); err != nil {
		return err
	}
	fmt.Println("10. MAC-authenticated frame delivered (the cheap hybrid path)")
	fmt.Println("done.")
	return nil
}
