// Command keyrotation demonstrates PEACE's second revocation mechanism
// (paper Section V.A): a group public key update. Rather than letting the
// URL grow with every revoked key, the operator rotates the issuing secret
// γ, re-registers the groups, and re-enrolls everyone except the revoked
// members. Old-epoch credentials stop verifying — revocation by omission,
// with an empty URL.
//
// Run with:
//
//	go run ./examples/keyrotation
package main

import (
	"errors"
	"fmt"
	"log"

	"github.com/peace-mesh/peace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := peace.Config{}
	fmt.Println("== group public key rotation (revocation by omission) ==")

	no, err := peace.NewNetworkOperator(cfg)
	if err != nil {
		return err
	}
	ttp, err := peace.NewTTP(cfg, no.Authority())
	if err != nil {
		return err
	}
	gm, err := peace.NewGroupManager(cfg, "coop", no.Authority())
	if err != nil {
		return err
	}
	if err := no.RegisterUserGroup(gm, ttp, 8); err != nil {
		return err
	}

	honest, err := peace.NewUser(cfg, peace.Identity{Essential: "honest"}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		return err
	}
	villain, err := peace.NewUser(cfg, peace.Identity{Essential: "villain"}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		return err
	}
	for _, u := range []*peace.User{honest, villain} {
		if err := peace.EnrollUser(u, gm, ttp); err != nil {
			return err
		}
	}

	router, err := peace.NewMeshRouter(cfg, "MR-1", no.Authority(), no.GroupPublicKey())
	if err != nil {
		return err
	}
	c, err := no.EnrollRouter("MR-1", router.Public())
	if err != nil {
		return err
	}
	router.SetCertificate(c)
	if err := refresh(no, router, honest, villain); err != nil {
		return err
	}

	attach := func(u *peace.User) error {
		b, err := router.Beacon()
		if err != nil {
			return err
		}
		m2, err := u.HandleBeacon(b, "coop")
		if err != nil {
			return err
		}
		_, _, err = router.HandleAccessRequest(m2)
		return err
	}

	fmt.Printf("1. epoch %d: honest attach: %v, villain attach: %v\n",
		no.Epoch(), errString(attach(honest)), errString(attach(villain)))

	// Rotate; re-register the group; re-enroll ONLY the honest user.
	newGpk, err := no.RotateGroupSecret()
	if err != nil {
		return err
	}
	if err := no.RegisterUserGroup(gm, ttp, 8); err != nil {
		return err
	}
	router.UpdateGroupKey(newGpk)
	if err := refresh(no, router, honest, villain); err != nil {
		return err
	}
	honest.UpdateGroupKey(newGpk)
	if err := peace.EnrollUser(honest, gm, ttp); err != nil {
		return err
	}
	fmt.Printf("2. rotated to epoch %d; honest re-enrolled, villain omitted\n", no.Epoch())

	err1 := attach(honest)
	err2 := attach(villain)
	fmt.Printf("3. epoch %d: honest attach: %v, villain attach: %v\n",
		no.Epoch(), errString(err1), errString(err2))
	if err1 != nil {
		return fmt.Errorf("honest user should still attach: %w", err1)
	}
	if !errors.Is(err2, peace.ErrBadAccessRequest) {
		return fmt.Errorf("villain should be rejected, got %v", err2)
	}

	_, url, err := no.RevocationBundles()
	if err != nil {
		return err
	}
	fmt.Printf("4. URL after rotation: %d entries at epoch %d (no per-key revocation state needed)\n",
		len(url.Snapshot.Entries), url.Snapshot.Epoch)
	fmt.Println("done.")
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return "REFUSED"
}

// refresh distributes a fresh epoch of revocation state: signed bundles
// to the router, and the matching snapshots to the listed users (standing
// in for the transport layer's delta fetch).
func refresh(no *peace.NetworkOperator, router *peace.MeshRouter, users ...*peace.User) error {
	crl, url, err := no.RevocationBundles()
	if err != nil {
		return err
	}
	if err := router.UpdateRevocations(crl, url); err != nil {
		return err
	}
	for _, u := range users {
		for _, snap := range []*peace.RevocationSnapshot{crl.Snapshot, url.Snapshot} {
			if err := u.InstallRevocationSnapshot(snap); err != nil {
				return err
			}
		}
	}
	return nil
}
