// Ablation benchmarks for the design choices DESIGN.md calls out: shared
// final exponentiation in revocation scans, the sparse line multiplication
// in the Miller loop, and the per-message versus fixed generator modes.
package peace_test

import (
	"crypto/rand"
	"testing"

	"github.com/peace-mesh/peace/internal/bn256"
	"github.com/peace-mesh/peace/internal/sgs"
)

// BenchmarkAblationSharedFinalExp measures the Eq.3 token test done
// naively (two independent pairings) versus the implementation's Miller
// product with one shared final exponentiation.
func BenchmarkAblationSharedFinalExp(b *testing.B) {
	a1, _ := bn256.RandomScalar(rand.Reader)
	a2, _ := bn256.RandomScalar(rand.Reader)
	p1 := new(bn256.G1).ScalarBaseMult(a1)
	p2 := new(bn256.G1).ScalarBaseMult(a2)
	q1 := new(bn256.G2).Base()
	q2 := new(bn256.G2).ScalarBaseMult(a1)

	b.Run("TwoFullPairings", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e1 := bn256.Pair(p1, q1)
			e2 := bn256.Pair(p2, q2)
			_ = e1.Equal(e2)
		}
	})
	b.Run("MillerProductSharedFinalExp", func(b *testing.B) {
		p2neg := new(bn256.G1).Neg(p2)
		for i := 0; i < b.N; i++ {
			acc := bn256.Miller(p1, q1)
			acc.Add(acc, bn256.Miller(p2neg, q2))
			_ = acc.Finalize().IsOne()
		}
	})
}

// BenchmarkAblationGeneratorModes compares signing and verification under
// the paper's per-message generator derivation versus the fixed-generator
// mode that enables O(1) revocation (the privacy/performance trade-off the
// paper acknowledges).
func BenchmarkAblationGeneratorModes(b *testing.B) {
	g := newBenchGroup(b, 1)
	msg := []byte("ablation message")

	for _, mode := range []sgs.GeneratorMode{sgs.PerMessageGenerators, sgs.FixedGenerators} {
		b.Run("Sign/"+mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sgs.SignWithMode(rand.Reader, g.pub, g.keys[0], msg, mode); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("Verify/"+mode.String(), func(b *testing.B) {
			sig, err := sgs.SignWithMode(rand.Reader, g.pub, g.keys[0], msg, mode)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sgs.Verify(g.pub, msg, sig); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRevocationScan compares the linear URL scan against the
// fast table-based check at a fixed |URL| to expose the constant factors
// behind E3's crossover.
func BenchmarkAblationRevocationScan(b *testing.B) {
	const urlSize = 8
	g := newBenchGroup(b, urlSize+1)
	msg := []byte("ablation revocation")
	tokens := make([]*sgs.RevocationToken, 0, urlSize)
	for _, k := range g.keys[1:] {
		tokens = append(tokens, k.Token())
	}

	b.Run("LinearScan", func(b *testing.B) {
		sig, err := sgs.Sign(rand.Reader, g.pub, g.keys[0], msg)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if revoked, _ := sgs.IsRevoked(g.pub, msg, sig, tokens); revoked {
				b.Fatal("unexpected revocation")
			}
		}
	})
	b.Run("FastTable", func(b *testing.B) {
		checker := sgs.NewFastRevocationChecker(g.pub, tokens)
		sig, err := sgs.SignWithMode(rand.Reader, g.pub, g.keys[0], msg, sgs.FixedGenerators)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			revoked, _, err := checker.IsRevoked(sig)
			if err != nil {
				b.Fatal(err)
			}
			if revoked {
				b.Fatal("unexpected revocation")
			}
		}
	})
}
