// Command peacekeys generates and inspects PEACE key material: the group
// public key, per-group SDH tuples, the split shares each party holds, and
// a demonstration sign/verify/open round-trip.
//
// Usage:
//
//	peacekeys -groups 2 -keys 3          # show the key material layout
//	peacekeys -demo                      # sign/verify/revoke/open round-trip
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"log"

	"github.com/peace-mesh/peace/internal/sgs"
)

func main() {
	groups := flag.Int("groups", 2, "number of user groups to issue")
	keys := flag.Int("keys", 2, "keys per group")
	demo := flag.Bool("demo", false, "run a sign/verify/revoke/open demonstration")
	flag.Parse()

	if err := run(*groups, *keys, *demo); err != nil {
		log.Fatal(err)
	}
}

func short(b []byte) string {
	if len(b) > 12 {
		b = b[:12]
	}
	return hex.EncodeToString(b) + "…"
}

func run(groups, keysPer int, demo bool) error {
	iss, err := sgs.NewIssuer(rand.Reader)
	if err != nil {
		return err
	}
	pub := iss.PublicKey()
	fmt.Println("group public key gpk = (g1, g2, w):")
	fmt.Printf("  w = g2^γ: %s (γ never leaves the operator)\n\n", short(pub.W.Marshal()))

	var all []*sgs.PrivateKey
	for gi := 0; gi < groups; gi++ {
		grp, err := iss.NewGroupComponent(rand.Reader)
		if err != nil {
			return err
		}
		batch, err := iss.IssueBatch(rand.Reader, grp, keysPer)
		if err != nil {
			return err
		}
		fmt.Printf("group %d  grp_i = %s…\n", gi, grp.Text(16)[:12])
		for j, k := range batch {
			fmt.Printf("  gsk[%d,%d]:\n", gi, j)
			fmt.Printf("    A (→ TTP, masked; NO keeps as grt token): %s\n", short(k.A.Marshal()))
			fmt.Printf("    x (→ GM, with grp):                      %s…\n", k.X.Text(16)[:12])
			if err := sgs.CheckKey(pub, k); err != nil {
				return fmt.Errorf("issued key fails SDH equation: %w", err)
			}
		}
		all = append(all, batch...)
	}
	fmt.Printf("\nall %d keys satisfy e(A, w·g2^{grp+x}) = e(g1, g2)\n", len(all))

	if !demo {
		return nil
	}

	fmt.Println("\n-- demo: sign / verify / revoke / open --")
	msg := []byte("beacon response transcript")
	signer := all[len(all)-1]
	sig, err := sgs.Sign(rand.Reader, pub, signer, msg)
	if err != nil {
		return err
	}
	fmt.Printf("signature (%d bytes): %s\n", len(sig.Bytes()), short(sig.Bytes()))
	if err := sgs.Verify(pub, msg, sig); err != nil {
		return err
	}
	fmt.Println("verify: ok (verifier learns only \"a member signed\")")

	grt := make([]*sgs.RevocationToken, len(all))
	for i, k := range all {
		grt[i] = k.Token()
	}
	idx := sgs.Open(pub, msg, sig, grt)
	fmt.Printf("open with grt: key index %d produced the signature\n", idx)

	url := []*sgs.RevocationToken{signer.Token()}
	if err := sgs.VerifyWithRevocation(pub, msg, sig, url); err != nil {
		fmt.Printf("after revocation: %v\n", err)
	} else {
		return fmt.Errorf("revoked signer passed verification")
	}
	return nil
}
