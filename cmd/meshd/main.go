// Command meshd runs the PEACE transport over real UDP sockets.
//
// Serve mode provisions a network, writes the users' credentials to a
// provision file and answers M.1–M.3 handshakes on a listen socket,
// printing router and transport counters as periodic JSON; on SIGTERM or
// SIGINT it drains gracefully (new attaches refused with a transient
// reject, in-flight replies delivered) before exiting. Client mode
// imports that provision file and drives N concurrent users through the
// full AKA against a remote meshd. Loopback mode runs both ends in one
// process over 127.0.0.1 with induced datagram loss — the acceptance
// drill for the retransmission machinery. Drill mode grows the URL
// across epochs between attachment rounds and reports how clients
// converged (delta fetches vs full snapshot fetches) — the acceptance
// drill for the epoch-based revocation distribution. Chaos mode runs the
// full fault-injection soak: a fleet of self-healing clients under
// sustained drop/corruption/duplication, a mid-run revocation bump, a
// server restart and a partition, reporting the recovery counters and
// every invariant violation. Metro mode boots an N-router backbone ring
// in one process and roams M users across it via ticket handoffs,
// printing the wave report plus every router's counters; with -soak it
// adds backbone fault injection, a mid-wave link partition and a closing
// revocation anti-rollback probe on every router. Attack mode runs the
// adaptive-DoS acceptance soak: a spoofed-source attacker fleet floods
// the attach ingress while a legitimate fleet holds and establishes
// sessions through the storm; the run judges the suspicion→puzzle loop
// (difficulty ratchet, bounded decay, replay refusal, attacker cost
// scaling, legit-fleet survival) and exits non-zero on any violation.
//
// Usage:
//
//	meshd -mode serve -listen 127.0.0.1:7464 -provision /tmp/peace.prov -users 100
//	meshd -mode client -addr 127.0.0.1:7464 -provision /tmp/peace.prov -users 100 -loss 0.05
//	meshd -mode loopback -users 100 -loss 0.05
//	meshd -mode drill -users 8 -rounds 4 -revoke 2
//	meshd -mode chaos -users 100 -drop 0.10 -corrupt 0.05 -dup 0.02 -partition 5s
//	meshd -mode metro -routers 8 -users 200 -moves 3
//	meshd -mode metro -routers 8 -users 200 -moves 3 -soak -partition 2s
//	meshd -mode attack -users 16 -flooders 3 -sources 8 -storm 2s -dosbase 3 -dosmax 8
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/peace-mesh/peace/internal/backbone"
	"github.com/peace-mesh/peace/internal/chaos"
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/metrics"
	"github.com/peace-mesh/peace/internal/transport"
)

// metricsHub backs the /metrics endpoint on the debug HTTP server: serve
// mode adds the transport and router registries once they exist, so the
// handler can be installed before the server boots.
var metricsHub = metrics.NewHub()

func main() {
	mode := flag.String("mode", "loopback", "serve, client, loopback or drill")
	listen := flag.String("listen", "127.0.0.1:7464", "serve: UDP listen address")
	addr := flag.String("addr", "127.0.0.1:7464", "client: meshd address to attach to")
	users := flag.Int("users", 100, "users to provision (serve) or drive (client, loopback)")
	loss := flag.Float64("loss", 0.05, "client, loopback: induced datagram loss probability [0,1)")
	seed := flag.Int64("seed", 1, "seed for induced loss")
	provision := flag.String("provision", "peace.prov", "serve: credentials file to write; client: to read")
	group := flag.String("group", "grp-0", "group to authenticate under")
	statsEvery := flag.Duration("stats", 5*time.Second, "serve: stats emission period")
	shards := flag.Int("shards", 1, "serve: ingest read loops (SO_REUSEPORT multi-sockets where available)")
	duration := flag.Duration("duration", 0, "serve: exit after this long (0 = until signal)")
	timeout := flag.Duration("timeout", 30*time.Second, "client, loopback, drill: per-handshake timeout")
	rounds := flag.Int("rounds", 4, "drill: attachment rounds (URL epochs)")
	revoke := flag.Int("revoke", 2, "drill: revocations between rounds")
	drop := flag.Float64("drop", 0.10, "chaos: datagram drop probability per direction")
	corrupt := flag.Float64("corrupt", 0.05, "chaos: bit-corruption probability per direction")
	dup := flag.Float64("dup", 0.02, "chaos: duplication probability per direction")
	storm := flag.Duration("storm", 2*time.Second, "chaos: keepalive soak length before the restart")
	partition := flag.Duration("partition", 5*time.Second, "chaos: partition length after the restart; metro: backbone partition length")
	routers := flag.Int("routers", 8, "metro: backbone routers in the ring")
	moves := flag.Int("moves", 3, "metro: cross-router handoffs per user")
	soak := flag.Bool("soak", false, "metro: add backbone fault injection, a mid-wave partition and the anti-rollback probe")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof and Prometheus /metrics on this address (e.g. 127.0.0.1:6060); empty disables")
	ratelimit := flag.Float64("ratelimit", 0, "serve: per-source attach/resume datagrams per second admitted (0 disables); attack: same, armed by default")
	rateburst := flag.Int("rateburst", 0, "serve: per-source burst above -ratelimit (0 = 2x the rate)")
	flooders := flag.Int("flooders", 3, "attack: flooder goroutines spraying the attach ingress")
	sources := flag.Int("sources", 8, "attack: spoofed source addresses per flooder")
	doswindow := flag.Duration("doswindow", 1500*time.Millisecond, "attack: suspicion sliding window")
	dosthreshold := flag.Int("dosthreshold", 8, "attack: failed requests within -doswindow that trip suspicion")
	dosquiet := flag.Duration("dosquiet", time.Second, "attack: quiet period before suspicion clears")
	dosbase := flag.Int("dosbase", 3, "attack: puzzle difficulty demanded the moment suspicion trips")
	dosmax := flag.Int("dosmax", 8, "attack: difficulty cap for the load-driven ratchet")
	dosstep := flag.Duration("dosstep", 150*time.Millisecond, "attack: minimum spacing between ratchet-up steps")
	dosdecay := flag.Duration("dosdecay", 200*time.Millisecond, "attack: spacing between decay steps once load subsides")
	flag.Parse()

	if *pprofAddr != "" {
		// The default mux carries the pprof handlers via the blank import;
		// /metrics serves every registry the running mode adds to the hub.
		http.Handle("/metrics", metricsHub)
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("meshd: debug http listener: %v", err)
			}
		}()
		log.Printf("meshd: pprof on http://%s/debug/pprof/, metrics on http://%s/metrics", *pprofAddr, *pprofAddr)
	}

	var err error
	switch *mode {
	case "serve":
		err = runServe(*listen, *provision, *users, *shards, *statsEvery, *duration, *ratelimit, *rateburst)
	case "client":
		err = runClient(*addr, *provision, *users, *loss, *seed, core.GroupID(*group), *timeout)
	case "loopback":
		err = runLoopback(*users, *loss, *seed, *timeout)
	case "drill":
		err = runDrill(*users, *rounds, *revoke, *timeout)
	case "chaos":
		err = runChaos(*users, *seed, *drop, *corrupt, *dup, *storm, *partition)
	case "metro":
		err = runMetro(*routers, *users, *moves, *seed, *soak, *partition)
	case "attack":
		err = runAttack(*users, *flooders, *sources, *seed, *storm, *ratelimit, core.DoSPolicy{
			Enabled:            true,
			Window:             *doswindow,
			SuspicionThreshold: *dosthreshold,
			QuietPeriod:        *dosquiet,
			BaseDifficulty:     uint8(*dosbase),
			MaxDifficulty:      uint8(*dosmax),
			StepInterval:       *dosstep,
			DecayInterval:      *dosdecay,
		})
	default:
		err = fmt.Errorf("unknown -mode %q (serve, client, loopback, drill, chaos, metro, attack)", *mode)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// statsLine is one periodic JSON record emitted by serve mode. The
// data-plane rates are derived between successive emissions: DataPPS is
// delivered data frames per second over the last period, DataBytes the
// cumulative plaintext bytes delivered, and BatchFillAvg the average
// datagrams moved per ingest syscall (1.0 means batching buys nothing,
// IOBatch means every recvmmsg comes back full).
type statsLine struct {
	At           string           `json:"at"`
	DataPPS      float64          `json:"data_pps"`
	DataBytes    int64            `json:"data_bytes"`
	BatchFillAvg float64          `json:"batch_fill_avg"`
	Transport    metrics.Snapshot `json:"transport"`
	Router       metrics.Snapshot `json:"router"`
}

func runServe(listen, provisionPath string, users, shards int, statsEvery, duration time.Duration, ratelimit float64, rateburst int) error {
	ln, err := transport.NewLocalNetwork(core.Config{}, "MR-0", "grp-0", users)
	if err != nil {
		return fmt.Errorf("provision: %w", err)
	}
	blob, err := ln.ExportCredentials()
	if err != nil {
		return err
	}
	if err := os.WriteFile(provisionPath, blob, 0o600); err != nil {
		return err
	}
	log.Printf("meshd: %d users provisioned, credentials in %s", users, provisionPath)

	conns, err := transport.ListenShards(listen, shards)
	if err != nil {
		return err
	}
	srv := transport.NewShardedServer(conns, ln.Router, transport.ServerConfig{
		Shards:          shards,
		RateLimitPerSec: ratelimit,
		RateLimitBurst:  rateburst,
		Logf:            log.Printf,
	})
	defer srv.Close()
	log.Printf("meshd: serving on %s (boot epoch %d, %d shard loops on %d sockets)",
		srv.Addr(), srv.BootEpoch(), srv.Shards(), len(conns))

	// One instrument: the JSON reporter below, the /metrics endpoint and
	// the peacebench experiments all read these two registries. The
	// OnScrape hook refreshes the stored gauges (reply-cache size) that
	// mirror live structures.
	metricsHub.Add(srv.Stats().Registry(), ln.Router.Metrics())
	metricsHub.OnScrape(func() { srv.Stats() })

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, duration)
		defer cancel()
	}

	enc := json.NewEncoder(os.Stdout)
	var lastDelivered int64
	lastAt := time.Now()
	emit := func() {
		now := time.Now()
		st := srv.Stats()
		line := statsLine{
			At:        now.UTC().Format(time.RFC3339),
			DataBytes: st.DataBytes(),
			Transport: st.Snapshot(),
			Router:    ln.Router.Metrics().Snapshot(),
		}
		delivered := st.DataDelivered()
		if dt := now.Sub(lastAt).Seconds(); dt > 0 {
			line.DataPPS = float64(delivered-lastDelivered) / dt
		}
		if rb := st.ReadBatches(); rb > 0 {
			line.BatchFillAvg = float64(st.ReadDatagrams()) / float64(rb)
		}
		lastDelivered, lastAt = delivered, now
		_ = enc.Encode(line)
	}
	tick := time.NewTicker(statsEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			emit()
		case <-ctx.Done():
			// Graceful drain: refuse new attaches with a transient reject
			// (clients back off and retry elsewhere) while every in-flight
			// reply is still delivered, then emit the final counters.
			log.Printf("meshd: draining")
			dctx, dcancel := context.WithTimeout(context.Background(), 10*time.Second)
			if err := srv.Drain(dctx); err != nil {
				log.Printf("meshd: drain: %v", err)
			}
			dcancel()
			emit()
			return nil
		}
	}
}

// clientReport is the JSON summary client mode prints on exit.
type clientReport struct {
	Users             int      `json:"users"`
	Established       int64    `json:"established"`
	Failed            int64    `json:"failed"`
	ElapsedNs         int64    `json:"elapsed_ns"`
	HandshakesPerSec  float64  `json:"handshakes_per_sec"`
	ClientRetransmits int64    `json:"client_retransmits"`
	ClientTimeouts    int64    `json:"client_timeouts"`
	DatagramsDropped  int64    `json:"datagrams_dropped"`
	Errors            []string `json:"errors,omitempty"`
}

func runClient(addr, provisionPath string, users int, loss float64, seed int64, group core.GroupID, timeout time.Duration) error {
	blob, err := os.ReadFile(provisionPath)
	if err != nil {
		return err
	}
	provisioned, err := transport.ImportUsers(core.Config{}, blob)
	if err != nil {
		return err
	}
	if len(provisioned) < users {
		return fmt.Errorf("provision file has %d users, -users %d requested", len(provisioned), users)
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}

	rep := clientReport{Users: users}
	var mu sync.Mutex
	var established, failed atomic.Int64
	var retransmits, timeouts, dropped atomic.Int64
	cfg := transport.ClientConfig{Group: group}
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < users; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, err := net.ListenPacket("udp", ":0")
			if err != nil {
				failed.Add(1)
				return
			}
			defer conn.Close()
			cconn := net.PacketConn(conn)
			if loss > 0 {
				lossy := transport.NewLossyConn(conn, loss, seed+int64(i)+1)
				cconn = lossy
				defer func() { dropped.Add(lossy.Dropped()) }()
			}
			cl := transport.NewClient(cconn, raddr, provisioned[i], cfg)
			ctx, cancel := context.WithTimeout(context.Background(), timeout)
			defer cancel()
			_, err = cl.Attach(ctx)
			retransmits.Add(cl.Stats().Retransmits())
			timeouts.Add(cl.Stats().Timeouts())
			if err != nil {
				failed.Add(1)
				mu.Lock()
				rep.Errors = append(rep.Errors, fmt.Sprintf("user %d: %v", i, err))
				mu.Unlock()
				return
			}
			established.Add(1)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep.Established = established.Load()
	rep.Failed = failed.Load()
	rep.ElapsedNs = elapsed.Nanoseconds()
	rep.ClientRetransmits = retransmits.Load()
	rep.ClientTimeouts = timeouts.Load()
	rep.DatagramsDropped = dropped.Load()
	if elapsed > 0 {
		rep.HandshakesPerSec = float64(rep.Established) / elapsed.Seconds()
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d/%d handshakes failed", rep.Failed, users)
	}
	return nil
}

func runLoopback(users int, loss float64, seed int64, timeout time.Duration) error {
	rep, err := transport.RunLoopback(transport.LoopbackConfig{
		Users:         users,
		Loss:          loss,
		Seed:          seed,
		AttachTimeout: timeout,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Failed > 0 {
		return fmt.Errorf("%d/%d handshakes failed", rep.Failed, rep.Users)
	}
	log.Printf("meshd: %d/%d handshakes established at %.0f%% loss (%.1f/s, %d retransmits, %d datagrams dropped)",
		rep.Established, rep.Users, loss*100, rep.HandshakesPerSec, rep.ClientRetransmits, rep.DatagramsDropped)
	return nil
}

// runDrill attaches -users clients per round while the NO revokes
// -revoke tokens between rounds, then prints the convergence report:
// clients should ride deltas after their first full snapshot.
func runDrill(users, rounds, revoke int, timeout time.Duration) error {
	rep, err := transport.RunRevocationDrill(transport.DrillConfig{
		Users:          users,
		Rounds:         rounds,
		RevokePerRound: revoke,
		AttachTimeout:  timeout,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if len(rep.Errors) > 0 {
		return fmt.Errorf("%d attachment failures", len(rep.Errors))
	}
	log.Printf("meshd: %d attachments over %d epochs converged with %d delta fetches, %d snapshot fetches (max %d full snapshots per client)",
		rep.Established, rep.FinalURLEpoch, rep.DeltaFetches, rep.SnapshotFetches, rep.SnapshotsPerClientMax)
	return nil
}

// runChaos executes the fault-injection soak and prints its report: the
// acceptance drill for the self-healing session machinery.
func runChaos(users int, seed int64, drop, corrupt, dup float64, storm, partition time.Duration) error {
	rep, err := chaos.RunSoak(chaos.SoakConfig{
		Users:        users,
		Seed:         seed,
		Faults:       chaos.FaultPlan{Drop: drop, Corrupt: corrupt, Duplicate: dup, Reorder: 0.02},
		StormLen:     storm,
		PartitionLen: partition,
		Logf:         log.Printf,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Failed() {
		return fmt.Errorf("chaos soak violated %d invariants", len(rep.Violations))
	}
	log.Printf("meshd: chaos soak clean: %d/%d clients re-established across restart+partition (%d reattaches, %d keepalives acked, %d faults injected)",
		rep.Established, rep.Users, rep.Reattaches, rep.KeepalivesAcked,
		rep.Injected.Dropped+rep.Injected.Corrupted+rep.Injected.Duplicated+rep.Injected.Reordered)
	return nil
}

// runAttack executes the adaptive-DoS attack soak and prints its report:
// the acceptance drill for the suspicion-driven client-puzzle defense.
func runAttack(users, flooders, sources int, seed int64, storm time.Duration, ratelimit float64, policy core.DoSPolicy) error {
	rep, err := chaos.RunAttackSoak(chaos.AttackConfig{
		LegitUsers:      users,
		Flooders:        flooders,
		SpoofedSources:  sources,
		Seed:            seed,
		StormLen:        storm,
		Policy:          policy,
		RateLimitPerSec: ratelimit,
		Logf:            log.Printf,
	})
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		return err
	}
	if rep.Failed() {
		return fmt.Errorf("attack soak violated %d invariants", len(rep.Violations))
	}
	log.Printf("meshd: attack soak clean: %d/%d legit clients alive through a %d-datagram flood; difficulty %d->%d->0 (decayed in %v), %d solution replays refused",
		rep.LegitAlive, rep.LegitUsers, rep.AttackerDatagrams,
		rep.BaseDifficulty, rep.PeakDifficulty, rep.DecayedIn.Round(time.Millisecond), rep.SolutionReplays)
	return nil
}

// metroLine is the JSON record metro mode emits: the wave (or soak)
// report plus every router's transport counters, handoff and gossip
// gauges included.
type metroLine struct {
	Report  any                `json:"report"`
	Routers []metrics.Snapshot `json:"routers"`
}

// runMetro boots an N-router metro backbone in one process and roams M
// users across it; with soak it additionally runs backbone fault
// injection, a mid-wave link partition and the closing anti-rollback
// probe. Exits non-zero on any session-continuity violation.
func runMetro(routers, users, moves int, seed int64, soak bool, partition time.Duration) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")

	if soak {
		rep, err := chaos.RunMetroSoak(chaos.MetroSoakConfig{
			Routers:      routers,
			Users:        users,
			Moves:        moves,
			Seed:         seed,
			PartitionLen: partition,
			Logf:         log.Printf,
		})
		if err != nil {
			return err
		}
		if err := enc.Encode(rep); err != nil {
			return err
		}
		if rep.Failed() {
			return fmt.Errorf("metro soak violated %d invariants", len(rep.Violations))
		}
		log.Printf("meshd: metro soak clean: %d users × %d moves over %d routers, %d handoffs, %d frames relayed, %d/%d rollbacks refused",
			rep.Users, rep.Moves, rep.Routers, rep.Wave.HandoffsIn, rep.Wave.FramesRelayed,
			rep.RollbacksRefused, rep.Routers)
		return nil
	}

	m, err := backbone.StartMetro(backbone.MetroConfig{
		Routers:        routers,
		Users:          users,
		Moves:          moves,
		GossipInterval: 100 * time.Millisecond,
		GraceWindow:    30 * time.Second,
		Logf:           nil,
	}, nil)
	if err != nil {
		return err
	}
	defer m.Close()
	log.Printf("meshd: metro up: %d routers in a ring, %d users, %d moves each", routers, users, moves)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Minute)
	defer cancel()
	rep, err := m.RoamingWave(ctx)
	if err != nil {
		return err
	}
	line := metroLine{Report: rep}
	for _, s := range m.Servers {
		line.Routers = append(line.Routers, s.Stats().Snapshot())
	}
	if err := enc.Encode(line); err != nil {
		return err
	}
	if len(rep.Violations) > 0 {
		return fmt.Errorf("metro wave violated %d invariants", len(rep.Violations))
	}
	log.Printf("meshd: metro wave clean: %d pairings, %d ticket handoffs, %d frames relayed, %d delivered",
		rep.Pairings, rep.Resumed, rep.FramesRelayed, rep.Delivered)
	return nil
}
