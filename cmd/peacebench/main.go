// Command peacebench regenerates the paper's evaluation as tables: one
// experiment per quantitative claim of Section V (see EXPERIMENTS.md for
// the paper-vs-measured record).
//
// Usage:
//
//	peacebench              # run every experiment
//	peacebench -exp e3      # run one experiment
//	peacebench -exp e3 -url 0,1,2,5,10,20,50 -iters 3
//	peacebench -exp e13             # UDP loopback handshake throughput
//	peacebench -json BENCH_results.json   # also write machine-readable results
//	                                      # (merges into an existing file)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"github.com/peace-mesh/peace/internal/experiments"
)

// benchJSON is the machine-readable record written by -json: op counts,
// primitive latencies and the two pipeline benchmarks, keyed by the same
// names as the testing.B benchmarks in bench_test.go so CI can compare
// either source.
type benchJSON struct {
	GeneratedAt string                 `json:"generated_at"`
	GoOS        string                 `json:"goos"`
	GoArch      string                 `json:"goarch"`
	NumCPU      int                    `json:"num_cpu"`
	OpCounts    map[string]opCountsRow `json:"op_counts,omitempty"`
	Primitives  map[string]int64       `json:"primitives_ns,omitempty"`
	Ablations   []ablationRow          `json:"ablations,omitempty"`
	Benchmarks  map[string]any         `json:"benchmarks,omitempty"`
}

type opCountsRow struct {
	Exps     int `json:"exps"`
	Pairings int `json:"pairings"`
	GTExps   int `json:"gt_exps"`
}

type ablationRow struct {
	Name        string  `json:"name"`
	BaselineNs  int64   `json:"baseline_ns"`
	OptimizedNs int64   `json:"optimized_ns"`
	Speedup     float64 `json:"speedup"`
}

// collect is non-nil when -json was requested; runners that produce
// machine-readable data add to it.
var collect *benchJSON

func main() {
	exp := flag.String("exp", "all", "experiment to run: e1..e19 or all")
	urlSizes := flag.String("url", "0,1,2,5,10,20", "comma-separated |URL| sweep for e3/e15")
	grtSizes := flag.String("grt", "4,8,16,32,64", "comma-separated |grt| sweep for e7")
	floods := flag.String("floods", "50,200", "comma-separated flood sizes for e6")
	attacks := flag.String("attacks", "0,1,10", "comma-separated attack intensities (spoofed flood sources) for e19")
	iters := flag.Int("iters", 1, "timing repetitions per point")
	jsonPath := flag.String("json", "", "write machine-readable results to this file")
	flag.Parse()

	if *jsonPath != "" {
		collect = &benchJSON{}
		// A partial run (-exp e13 -json BENCH_results.json) appends to the
		// existing record instead of discarding the other experiments.
		if buf, err := os.ReadFile(*jsonPath); err == nil {
			if err := json.Unmarshal(buf, collect); err != nil {
				log.Fatalf("existing %s: %v", *jsonPath, err)
			}
		}
		collect.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
		collect.GoOS = runtime.GOOS
		collect.GoArch = runtime.GOARCH
		collect.NumCPU = runtime.NumCPU()
		if collect.OpCounts == nil {
			collect.OpCounts = map[string]opCountsRow{}
		}
		if collect.Primitives == nil {
			collect.Primitives = map[string]int64{}
		}
		if collect.Benchmarks == nil {
			collect.Benchmarks = map[string]any{}
		}
	}
	if err := run(*exp, parseInts(*urlSizes), parseInts(*grtSizes), parseInts(*floods), parseInts(*attacks), *iters); err != nil {
		log.Fatal(err)
	}
	if collect != nil {
		buf, err := json.MarshalIndent(collect, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *jsonPath)
	}
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			log.Fatalf("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func run(exp string, urlSizes, grtSizes, floods, attacks []int, iters int) error {
	runAll := exp == "all"
	ran := false
	for _, e := range []struct {
		name string
		fn   func() error
	}{
		{"e1", func() error { return runE1() }},
		{"e2", func() error { return runE2(urlSizes) }},
		{"e3", func() error { return runE3(urlSizes, iters) }},
		{"e4", func() error { return runE4() }},
		{"e5", func() error { return runE5(iters) }},
		{"e6", func() error { return runE6(floods) }},
		{"e7", func() error { return runE7(grtSizes) }},
		{"e8", func() error { return runE8() }},
		{"e9", func() error { return runE9() }},
		{"e10", func() error { return runE10(iters) }},
		{"e11", func() error { return runE11(iters) }},
		{"e12", func() error { return runE12(iters) }},
		{"e13", func() error { return runE13() }},
		{"e14", func() error { return runE14(iters) }},
		{"e15", func() error { return runE15(urlSizes, iters) }},
		{"e16", func() error { return runE16(iters) }},
		{"e17", func() error { return runE17(iters) }},
		{"e18", func() error { return runE18(iters) }},
		{"e19", func() error { return runE19(attacks, iters) }},
	} {
		if runAll || exp == e.name {
			ran = true
			if err := e.fn(); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want e1..e19 or all)", exp)
	}
	return nil
}

func table() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// runE19 measures legitimate-client attach latency against the live
// adaptive puzzle defense across attack intensities: the calm baseline
// pays no puzzle, attacked points pay the demanded difficulty plus the
// flood's queueing.
func runE19(attacks []int, iters int) error {
	header("E19: legit attach latency vs attack intensity (adaptive DoS defense)")
	rows, err := experiments.RunE19AttackLatency(attacks, iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "intensity\tattached\tp50\tp99\tpeak difficulty\tflood datagrams\tpuzzles verified")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%d/%d\t%v\t%v\t%d\t%d\t%d\n",
			r.Intensity, r.Attached, r.Samples,
			r.P50.Round(time.Microsecond), r.P99.Round(time.Microsecond),
			r.PeakDifficulty, r.FloodDatagrams, r.PuzzlesVerified)
	}
	w.Flush()
	fmt.Println("claim: attaches keep succeeding under flood; latency degrades gracefully with the demanded difficulty")
	if collect != nil {
		out := make([]map[string]any, 0, len(rows))
		for _, r := range rows {
			out = append(out, map[string]any{
				"intensity":        r.Intensity,
				"samples":          r.Samples,
				"attached":         r.Attached,
				"p50_ns":           int64(r.P50),
				"p99_ns":           int64(r.P99),
				"peak_difficulty":  r.PeakDifficulty,
				"flood_datagrams":  r.FloodDatagrams,
				"puzzles_verified": r.PuzzlesVerified,
			})
		}
		collect.Benchmarks["E19AttackLatency"] = map[string]any{
			"rows": out,
		}
	}
	return nil
}

// runE14 compares the big.Int reference field core against the Montgomery
// limb core on the dominant primitives. The canonical primitive latencies
// stay owned by e10 (which times the public API paths); e14 records the
// before/after pair under its own key.
func runE14(iters int) error {
	header("E14: field-core before/after (big.Int reference vs Montgomery limbs)")
	rows, err := experiments.RunE14FieldCore(2 * iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "primitive\treference (big.Int)\tlimb core\tspeedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\t%v\t%.1fx\n",
			r.Name, time.Duration(r.RefNs), time.Duration(r.LimbNs), r.Speedup)
	}
	w.Flush()
	if collect != nil {
		fieldCore := make([]map[string]any, 0, len(rows))
		for _, r := range rows {
			fieldCore = append(fieldCore, map[string]any{
				"name":    r.Name,
				"ref_ns":  r.RefNs,
				"limb_ns": r.LimbNs,
				"speedup": r.Speedup,
			})
		}
		collect.Benchmarks["FieldCoreComparison"] = map[string]any{
			"rows": fieldCore,
		}
	}
	return nil
}

func runE1() error {
	header("E1: signature & message sizes (paper V.C communication overhead)")
	rep, err := experiments.RunE1Size()
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "quantity\tbits\tbytes\tnote")
	fmt.Fprintf(w, "PEACE signature (paper 170/171-bit params)\t%d\t%d\t2·G1 + 5·Z_p\n",
		rep.PaperSignatureBits, rep.PaperSignatureBits/8)
	fmt.Fprintf(w, "RSA-1024 signature (paper baseline)\t%d\t%d\t\n", rep.RSA1024Bits, rep.RSA1024Bits/8)
	fmt.Fprintf(w, "PEACE signature (this repo, BN256)\t%d\t%d\tsame element count, 256-bit curve\n",
		rep.MeasuredSignatureBits, rep.MeasuredSignatureBytes)
	fmt.Fprintf(w, "ECDSA P-256 (router signatures)\t%d\t%d\tDER upper bound\n", rep.ECDSAP256Bits, rep.ECDSAP256Bits/8)
	w.Flush()
	fmt.Println("\nAKA message sizes on the wire (BN256 parameterization):")
	w = table()
	for _, k := range []string{"M.1 beacon", "M.2 access request", "M.3 confirm", "data frame (64B payload)"} {
		fmt.Fprintf(w, "  %s\t%d bytes\n", k, rep.MessageSizes[k])
	}
	w.Flush()
	fmt.Println("paper claim: group signature (1192 bits) ≈ RSA-1024 (1024 bits)  → holds")
	return nil
}

func runE2(urlSizes []int) error {
	header("E2: operation counts (paper V.C computational overhead)")
	urlSize := 3
	if len(urlSizes) > 0 {
		urlSize = urlSizes[len(urlSizes)-1]
	}
	rep, err := experiments.RunE2OpCounts(urlSize)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "operation\tmeasured exps\tmeasured pairings\tpaper exps\tpaper pairings\tmatch")
	fmt.Fprintf(w, "sign\t%d\t%d\t%d\t%d\t%v\n",
		rep.Sign.Exps, rep.Sign.Pairings, rep.PaperSignExps, rep.PaperSignPairings, rep.SignMatches)
	fmt.Fprintf(w, "verify (|URL|=0)\t%d\t%d(+%d cached)\t%d\t%d\t%v\n",
		rep.Verify.Exps, rep.Verify.Pairings, rep.Verify.GTExps, rep.PaperVerifyExps, rep.PaperVerifyPairings, rep.VerifyMatches)
	fmt.Fprintf(w, "verify (|URL|=%d)\t%d\t%d(+%d cached)\t%d\t%d\t\n",
		rep.URLSize, rep.VerifyWithURL.Exps, rep.VerifyWithURL.Pairings, rep.VerifyWithURL.GTExps,
		rep.PaperVerifyExps, rep.PaperVerifyPairings+rep.PaperPerTokenPairing*rep.URLSize)
	w.Flush()
	fmt.Println("note: this implementation caches e(g1,g2); the paper charges it as the third verify pairing")
	if collect != nil {
		collect.OpCounts["sign"] = opCountsRow{Exps: rep.Sign.Exps, Pairings: rep.Sign.Pairings, GTExps: rep.Sign.GTExps}
		collect.OpCounts["verify"] = opCountsRow{Exps: rep.Verify.Exps, Pairings: rep.Verify.Pairings, GTExps: rep.Verify.GTExps}
		collect.OpCounts["verify_with_url"] = opCountsRow{Exps: rep.VerifyWithURL.Exps, Pairings: rep.VerifyWithURL.Pairings, GTExps: rep.VerifyWithURL.GTExps}
	}
	return nil
}

func runE3(urlSizes []int, iters int) error {
	header("E3: verification cost vs |URL| — linear scan vs fast revocation (paper V.C)")
	pts, err := experiments.RunE3RevocationSweep(urlSizes, iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "|URL|\tlinear time\tlinear pairings (paper 3+2|URL|)\tfast time\tfast pairings (paper 5)")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%v\t%d\t%v\t%d\n", p.URLSize, p.LinearTime, p.LinearPairings, p.FastTime, p.FastPairings)
	}
	w.Flush()
	fmt.Println("paper claim: linear in |URL|; fast variant constant at 5 pairings  → holds")
	return nil
}

func runE4() error {
	header("E4: three-message AKA over the simulated mesh (paper V.C)")
	rep, err := experiments.RunE4Handshake(4, 5_000_000 /* 5ms */)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "uplink hops\tattach delay (virtual)\tAKA messages on air")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%d\t%v\t%d (+1 shared beacon)\n", r.Hops, r.AttachDelay, r.MessagesSent)
	}
	w.Flush()
	fmt.Printf("three-message property observed: %v\n", rep.ThreeMessages)

	lossy, err := experiments.RunE4Lossy([]float64{0, 0.1, 0.3, 0.5})
	if err != nil {
		return err
	}
	fmt.Println("\nlossy-link attachment (beacon-driven retry):")
	w = table()
	fmt.Fprintln(w, "loss\tattached\tframes lost")
	for _, r := range lossy {
		fmt.Fprintf(w, "%.0f%%\t%d/%d\t%d\n", r.Loss*100, r.Attached, r.Users, r.FramesLost)
	}
	w.Flush()
	fmt.Println("\ntraffic totals:")
	w = table()
	for k, v := range rep.FramesByMessage {
		fmt.Fprintf(w, "  %s\tframes=%d\tbytes=%d\n", k, v, rep.BytesByMessage[k])
	}
	w.Flush()
	return nil
}

func runE5(iters int) error {
	header("E5: hybrid session authentication (paper V.C)")
	n := 256 * iters
	rep, err := experiments.RunE5Hybrid(n)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "per-message path\tcost")
	fmt.Fprintf(w, "group signature sign\t%v\n", rep.GroupSignTime)
	fmt.Fprintf(w, "group signature verify\t%v\n", rep.GroupVerifyTime)
	fmt.Fprintf(w, "HMAC tag\t%v\n", rep.MACTime)
	fmt.Fprintf(w, "HMAC verify\t%v\n", rep.MACVerifyTime)
	fmt.Fprintf(w, "AES-GCM seal\t%v\n", rep.SealTime)
	fmt.Fprintf(w, "AES-GCM open\t%v\n", rep.OpenTime)
	w.Flush()
	fmt.Printf("MAC vs group-signature speedup: %.0f×\n", rep.SpeedupAuth)
	fmt.Println("paper claim: hybrid design reduces per-message cost dramatically  → holds")
	return nil
}

func runE6(floods []int) error {
	header("E6: DoS flooding with and without client puzzles (paper V.A)")
	rows, err := experiments.RunE6DoS(floods)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "flood size\tpuzzles\texpensive verifications\tshed cheaply\tlegit user attached")
	for _, r := range rows {
		fmt.Fprintf(w, "%d\t%v\t%d\t%d\t%v\n",
			r.FloodSize, r.PuzzlesEnabled, r.ExpensiveVerifications, r.ShedCheaply, r.LegitimateAttached)
	}
	w.Flush()
	fmt.Println("paper claim: puzzles shed floods before pairing work; legit users unaffected  → holds")
	return nil
}

func runE7(grtSizes []int) error {
	header("E7: operator audit cost vs |grt| and the full trace (paper IV.D)")
	pts, err := experiments.RunE7AuditSweep(grtSizes)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "|grt|\taudit time (worst case)\ttokens scanned\tper-token")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%v\t%d\t%v\n", p.GrtSize, p.AuditTime, p.TokensScanned, p.PerTokenTime)
	}
	w.Flush()

	trace, err := experiments.RunE7Trace()
	if err != nil {
		return err
	}
	fmt.Printf("full law-authority trace: group=%q uid=%q receipts-verified=%v in %v\n",
		trace.Audit.Group, trace.User, trace.ReceiptVerified, trace.TraceTime)
	return nil
}

func runE8() error {
	header("E8: attack-resilience scenarios (paper V.A)")
	rows, err := experiments.RunE8Attacks()
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "scenario\tattempts\tsucceeded\tdefense")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%s\n", r.Scenario, r.Attempts, r.Succeeded, r.Detail)
	}
	w.Flush()
	fmt.Println("paper claim: all of these attack classes are filtered  → holds (0 successes)")
	return nil
}

func runE9() error {
	header("E9: privacy properties (paper V.B)")
	rep, err := experiments.RunE9Privacy(4)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "property\tholds")
	fmt.Fprintf(w, "no identity information in any transcript\t%v\n", rep.TranscriptsLeakNoUID)
	fmt.Fprintf(w, "signatures structurally unlinkable\t%v\n", rep.SignaturesUnlinkableStructurally)
	fmt.Fprintf(w, "session identifiers always fresh\t%v\n", rep.SessionIDsFresh)
	fmt.Fprintf(w, "operator audit reveals group only\t%v\n", rep.OperatorLearnsGroupOnly)
	fmt.Fprintf(w, "compromised members cannot link sessions\t%v\n", rep.CompromisedMemberCannotLink)
	fmt.Fprintf(w, "group manager blind without operator\t%v\n", rep.GMBlind)
	w.Flush()
	for _, n := range rep.Notes {
		fmt.Println("  FAILURE:", n)
	}
	return nil
}

func runE11(iters int) error {
	header("E11: implementation ablations (DESIGN.md design choices)")
	rows, err := experiments.RunE11Ablations(2 * iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "technique\tbaseline\twith technique\tgain\tnote")
	for _, r := range rows {
		if r.Name == "compressed signature encoding" {
			fmt.Fprintf(w, "%s\t%dB\t%dB\t%.2fx\t%s\n", r.Name, int(r.Baseline), int(r.Optimized), r.Speedup, r.Detail)
			continue
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%.2fx\t%s\n", r.Name, r.Baseline, r.Optimized, r.Speedup, r.Detail)
	}
	w.Flush()
	if collect != nil {
		// This run regenerates every ablation, so replace rather than append
		// to any rows loaded from an existing -json file.
		collect.Ablations = collect.Ablations[:0]
		for _, r := range rows {
			collect.Ablations = append(collect.Ablations, ablationRow{
				Name:        r.Name,
				BaselineNs:  int64(r.Baseline),
				OptimizedNs: int64(r.Optimized),
				Speedup:     r.Speedup,
			})
		}
	}
	return nil
}

func runE10(iters int) error {
	header("E10: pairing-substrate microbenchmarks")
	rows, err := experiments.RunE10Primitives(2 * iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "primitive\tlatency")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%v\n", r.Name, r.Time)
	}
	w.Flush()
	if collect != nil {
		for _, r := range rows {
			collect.Primitives[r.Name] = int64(r.Time)
		}
	}
	return nil
}

// runE12 measures the batch-verification pipeline against the sequential
// path and the parallel URL sweep — the same quantities as the repo-level
// BenchmarkE11BatchVerify / BenchmarkE12ParallelSweep, so the -json record
// uses those benchmark names.
func runE12(iters int) error {
	header("E12: batch verification pipeline & parallel URL sweep (DESIGN.md)")
	rep, err := experiments.RunE12Batch(16, 64, iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "path\tper signature\tspeedup")
	fmt.Fprintf(w, "sequential Verify ×%d\t%v\t1.00x\n", rep.BatchSize, rep.SequentialPer)
	fmt.Fprintf(w, "BatchVerify(%d)\t%v\t%.2fx\n", rep.BatchSize, rep.BatchPer, rep.Speedup)
	w.Flush()
	fmt.Printf("\nrevocation sweep over %d tokens:\n", rep.URLSize)
	w = table()
	fmt.Fprintln(w, "workers\tper token")
	for _, row := range rep.Sweep {
		fmt.Fprintf(w, "%d\t%v\n", row.Workers, row.PerToken)
	}
	w.Flush()
	if collect != nil {
		collect.Benchmarks["BenchmarkE11BatchVerify"] = map[string]any{
			"batch_size":            rep.BatchSize,
			"sequential_ns_per_sig": int64(rep.SequentialPer),
			"batch_ns_per_sig":      int64(rep.BatchPer),
			"speedup":               rep.Speedup,
		}
		sweep := make([]map[string]any, 0, len(rep.Sweep))
		for _, row := range rep.Sweep {
			sweep = append(sweep, map[string]any{
				"workers":      row.Workers,
				"ns_per_token": int64(row.PerToken),
			})
		}
		collect.Benchmarks["BenchmarkE12ParallelSweep"] = map[string]any{
			"url_size": rep.URLSize,
			"rows":     sweep,
		}
	}
	return nil
}

// runE15 measures the epoch-based revocation distribution: beacon bytes
// (flat in |URL|), full-snapshot vs one-entry-delta fetch sizes, and the
// router sweep with and without the cached per-epoch index.
func runE15(urlSizes []int, iters int) error {
	header("E15: revocation distribution — update bandwidth & cached sweep (DESIGN.md)")
	pts, err := experiments.RunE15RevDist(urlSizes, iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "|URL|\tbeacon\tsnapshot\tdelta(1)\tcold sweep\tindex build\tcached check")
	for _, p := range pts {
		fmt.Fprintf(w, "%d\t%dB\t%dB\t%dB\t%v\t%v\t%v\n",
			p.URLSize, p.BeaconBytes, p.SnapshotBytes, p.DeltaBytes,
			p.ColdSweep, p.CachedBuild, p.CachedCheck)
	}
	w.Flush()
	fmt.Println("claim: beacon size is independent of |URL|; warm clients pay delta bytes, not snapshot bytes")
	if collect != nil {
		rows := make([]map[string]any, 0, len(pts))
		for _, p := range pts {
			rows = append(rows, map[string]any{
				"url_size":        p.URLSize,
				"beacon_bytes":    p.BeaconBytes,
				"snapshot_bytes":  p.SnapshotBytes,
				"delta_bytes":     p.DeltaBytes,
				"cold_sweep_ns":   int64(p.ColdSweep),
				"index_build_ns":  int64(p.CachedBuild),
				"cached_check_ns": int64(p.CachedCheck),
			})
		}
		collect.Benchmarks["E15RevocationDistribution"] = map[string]any{
			"rows": rows,
		}
	}
	return nil
}

func runE13() error {
	header("E13: loopback handshake throughput over UDP (internal/transport)")
	rep, err := experiments.RunE13Transport([]int{16, 64, 100}, []float64{0, 0.05})
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "users\tloss\testablished\thandshakes/s\tp50\tp99\tretransmits\tdropped")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%d\t%.0f%%\t%d/%d\t%.1f\t%v\t%v\t%d\t%d\n",
			r.Users, r.Loss*100, r.Established, r.Users, r.HandshakesPerSec,
			r.P50.Round(time.Millisecond), r.P99.Round(time.Millisecond),
			r.Retransmits, r.DatagramsDropped)
	}
	w.Flush()
	if collect != nil {
		rows := make([]map[string]any, 0, len(rep.Rows))
		for _, r := range rep.Rows {
			rows = append(rows, map[string]any{
				"users":              r.Users,
				"loss":               r.Loss,
				"established":        r.Established,
				"failed":             r.Failed,
				"handshakes_per_sec": r.HandshakesPerSec,
				"p50_ns":             int64(r.P50),
				"p99_ns":             int64(r.P99),
				"retransmits":        r.Retransmits,
				"datagrams_dropped":  r.DatagramsDropped,
			})
		}
		collect.Benchmarks["BenchmarkE13LoopbackHandshake"] = map[string]any{
			"rows": rows,
		}
	}
	return nil
}

// runE16 measures session-ticket resumption: re-attach latency with the
// pairing off the hot path, resume throughput vs shard count, session
// memory, and the restart-soak re-attach economics.
func runE16(iters int) error {
	header("E16: session resumption & sharded ingest (internal/transport)")
	rep, err := experiments.RunE16Resume([]int{1, 2, 4}, iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "path\tp50 latency")
	fmt.Fprintf(w, "full M.1–M.3 attach\t%v\n", rep.FullP50.Round(time.Microsecond))
	fmt.Fprintf(w, "ticket resume\t%v\n", rep.ResumeP50.Round(time.Microsecond))
	w.Flush()
	fmt.Printf("resume is %.1fx cheaper than the full handshake\n", rep.SpeedupX)

	w = table()
	fmt.Fprintln(w, "shards\tresumes\telapsed\tresumes/s")
	for _, r := range rep.ShardRows {
		fmt.Fprintf(w, "%d\t%d\t%v\t%.0f\n", r.Shards, r.Resumes, r.Elapsed.Round(time.Millisecond), r.ResumesPerSec)
	}
	w.Flush()
	if rep.NumCPU == 1 {
		fmt.Println("note: single-core runner — shard scaling needs a multi-core host; rows show no regression only")
	}
	fmt.Printf("session table: %dB/session, %.1fMB per 100k sessions\n",
		rep.BytesPerSession, float64(rep.MemPer100kSessions)/(1<<20))
	fmt.Printf("restart soak: %d clients × %d restarts → %d full handshakes, %d resumes\n",
		rep.SoakUsers, rep.SoakRestarts, rep.SoakFullHandshakes, rep.SoakResumes)

	if collect != nil {
		rows := make([]map[string]any, 0, len(rep.ShardRows))
		for _, r := range rep.ShardRows {
			rows = append(rows, map[string]any{
				"shards":          r.Shards,
				"resumes":         r.Resumes,
				"elapsed_ns":      int64(r.Elapsed),
				"resumes_per_sec": r.ResumesPerSec,
			})
		}
		collect.Benchmarks["E16SessionResumption"] = map[string]any{
			"full_attach_p50_ns":    int64(rep.FullP50),
			"resume_p50_ns":         int64(rep.ResumeP50),
			"resume_speedup_x":      rep.SpeedupX,
			"shard_rows":            rows,
			"num_cpu":               rep.NumCPU,
			"bytes_per_session":     rep.BytesPerSession,
			"mem_per_100k_sessions": rep.MemPer100kSessions,
			"soak_users":            rep.SoakUsers,
			"soak_restarts":         rep.SoakRestarts,
			"soak_full_handshakes":  rep.SoakFullHandshakes,
			"soak_resumes":          rep.SoakResumes,
		}
	}
	return nil
}

// runE17 measures the roaming-handoff price point: a cross-router ticket
// handoff against the same-router resume it generalizes and the full
// pairing it avoids.
func runE17(iters int) error {
	header("E17: cross-router roaming handoff (internal/backbone)")
	rep, err := experiments.RunE17Handoff(iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "path\tp50 latency")
	fmt.Fprintf(w, "full M.1–M.3 attach\t%v\n", rep.FullAttachP50.Round(time.Microsecond))
	fmt.Fprintf(w, "same-router resume\t%v\n", rep.SameRouterResumeP50.Round(time.Microsecond))
	fmt.Fprintf(w, "cross-router handoff\t%v\n", rep.CrossRouterHandoffP50.Round(time.Microsecond))
	w.Flush()
	fmt.Printf("handoff costs %.2fx a same-router resume and is %.1fx cheaper than re-pairing (%d handoffs measured)\n",
		rep.HandoffVsResumeX, rep.AttachVsHandoffX, rep.Handoffs)

	if collect != nil {
		collect.Benchmarks["E17RoamingHandoff"] = map[string]any{
			"full_attach_p50_ns":          int64(rep.FullAttachP50),
			"same_router_resume_p50_ns":   int64(rep.SameRouterResumeP50),
			"cross_router_handoff_p50_ns": int64(rep.CrossRouterHandoffP50),
			"handoff_vs_resume_x":         rep.HandoffVsResumeX,
			"attach_vs_handoff_x":         rep.AttachVsHandoffX,
			"handoffs":                    rep.Handoffs,
		}
	}
	return nil
}

// runE18 measures the batched data-plane ceiling: sealed DataFrame echo
// round trips per second across shard counts and recvmmsg/sendmmsg batch
// widths, against the one-datagram-per-syscall baseline.
func runE18(iters int) error {
	header("E18: batched data-plane packets/sec ceiling (internal/transport/batchio)")
	rep, err := experiments.RunE18DataPlane([]int{1, 2, 4}, []int{1, 8, 32}, iters)
	if err != nil {
		return err
	}
	w := table()
	fmt.Fprintln(w, "shards\tio batch\tround trips\tpps\tMB/s\tsrv batch fill")
	for _, r := range rep.Rows {
		fmt.Fprintf(w, "%d\t%d\t%d\t%.0f\t%.1f\t%.1f\n",
			r.Shards, r.IOBatch, r.Packets, r.PPS, r.MBPS, r.BatchFillAvg)
	}
	w.Flush()
	fmt.Printf("batched ceiling %.0f pps vs unbatched %.0f pps: %.1fx (payload %dB, mmsg engaged: %v)\n",
		rep.BatchedPPS, rep.UnbatchedPPS, rep.SpeedupX, rep.PayloadBytes, rep.BatchedIO)
	if rep.NumCPU == 1 {
		fmt.Println("note: single-core runner — shard rows show syscall amortization only, not parallel scaling")
	}

	if collect != nil {
		rows := make([]map[string]any, 0, len(rep.Rows))
		for _, r := range rep.Rows {
			rows = append(rows, map[string]any{
				"shards":         r.Shards,
				"io_batch":       r.IOBatch,
				"round_trips":    r.Packets,
				"echo_bytes":     r.Bytes,
				"elapsed_ns":     int64(r.Elapsed),
				"pps":            r.PPS,
				"mb_per_sec":     r.MBPS,
				"srv_batch_fill": r.BatchFillAvg,
			})
		}
		collect.Benchmarks["E18DataPlane"] = map[string]any{
			"rows":          rows,
			"payload_bytes": rep.PayloadBytes,
			"unbatched_pps": rep.UnbatchedPPS,
			"batched_pps":   rep.BatchedPPS,
			"speedup_x":     rep.SpeedupX,
			"batched_io":    rep.BatchedIO,
			"num_cpu":       rep.NumCPU,
		}
	}
	return nil
}
