// Command meshsim runs a configurable metropolitan-WMN simulation: a
// router backbone, chains of relaying users, optional lossy links, and a
// choice of adversaries. It prints attachment results, traffic totals and
// adversary outcomes.
//
// Usage:
//
//	meshsim -users 8 -hops 4 -loss 0.1 -adversary rogue
//	meshsim -users 20 -routers 2 -adversary flood -flood 100
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/mesh"
	"github.com/peace-mesh/peace/internal/revocation"
)

func main() {
	users := flag.Int("users", 6, "number of network users")
	hops := flag.Int("hops", 3, "maximum uplink chain length")
	routers := flag.Int("routers", 1, "number of mesh routers")
	loss := flag.Float64("loss", 0, "per-link frame loss probability [0,1)")
	latencyMS := flag.Int("latency", 5, "per-hop latency in milliseconds")
	adversary := flag.String("adversary", "none", "adversary: none, rogue, flood, replay")
	floodSize := flag.Int("flood", 50, "bogus requests for -adversary flood")
	seed := flag.Int64("seed", 1, "simulation seed")
	horizon := flag.Duration("horizon", 60*time.Second, "virtual-time horizon")
	flag.Parse()

	if err := run(*users, *hops, *routers, *loss, *latencyMS, *adversary, *floodSize, *seed, *horizon); err != nil {
		log.Fatal(err)
	}
}

func run(users, hops, routers int, loss float64, latencyMS int, adversary string, floodSize int, seed int64, horizon time.Duration) error {
	if hops < 1 {
		hops = 1
	}
	d, err := mesh.NewDeployment(mesh.DeploymentSpec{
		Seed:         seed,
		Groups:       2,
		KeysPerGroup: users + 2,
		Routers:      routers,
	})
	if err != nil {
		return err
	}
	link := mesh.Link{Latency: time.Duration(latencyMS) * time.Millisecond, Loss: loss}

	// Distribute users across routers in chains of at most `hops`.
	var ids []mesh.NodeID
	routerOf := map[mesh.NodeID]mesh.NodeID{}
	for i := 0; i < users; i++ {
		ids = append(ids, mesh.NodeID(fmt.Sprintf("u%02d", i)))
	}
	perRouter := (users + routers - 1) / routers
	for ri := 0; ri < routers; ri++ {
		router := mesh.NodeID(fmt.Sprintf("MR-%d", ri))
		lo := ri * perRouter
		hi := lo + perRouter
		if hi > users {
			hi = users
		}
		var chain []mesh.NodeID
		for i := lo; i < hi; i++ {
			id := ids[i]
			routerOf[id] = router
			pos := len(chain) % hops
			next := router
			if pos > 0 {
				next = chain[len(chain)-1]
			}
			group := core.GroupID("grp-0")
			if i%2 == 1 {
				group = "grp-1"
			}
			if _, err := d.AddUser(id, group, next, true); err != nil {
				return err
			}
			chain = append(chain, id)
			if pos == hops-1 {
				d.BuildChain(router, chain[len(chain)-pos-1:], link)
				chain = chain[:0]
			}
		}
		if len(chain) > 0 {
			d.BuildChain(router, chain, link)
		}
	}

	eve := mesh.NewEavesdropper(d.Net)

	var rogue *mesh.RogueRouter
	var injector *mesh.Injector
	switch adversary {
	case "none":
	case "rogue":
		legit := d.Routers["MR-0"].Router()
		urlSnap, ok := legit.RevocationSnapshot(revocation.ListURL)
		if !ok {
			return fmt.Errorf("router MR-0 has no URL snapshot")
		}
		crlSnap, ok := legit.RevocationSnapshot(revocation.ListCRL)
		if !ok {
			return fmt.Errorf("router MR-0 has no CRL snapshot")
		}
		var err error
		rogue, err = mesh.NewRogueRouter(d.Net, "MR-evil", urlSnap.Ref(), crlSnap.Ref())
		if err != nil {
			return err
		}
		for _, id := range ids {
			d.Net.Connect("MR-evil", id, link)
		}
		for i := 0; i < 5; i++ {
			d.Net.Schedule(time.Duration(i)*time.Second, func() { _ = rogue.BroadcastPhishingBeacon() })
		}
	case "flood":
		injector = mesh.NewInjector(d.Net, "attacker", "MR-0")
		d.Net.Connect("attacker", "MR-0", link)
		d.Net.Schedule(time.Second, func() { injector.Flood(floodSize, time.Millisecond) })
		d.Routers["MR-0"].Router().SetDoSDefense(true)
	case "replay":
		// handled after the run via eve's captures
	default:
		return fmt.Errorf("unknown adversary %q", adversary)
	}

	for id := range d.Routers {
		d.Routers[id].StartBeacons(2*time.Second, int(horizon/(2*time.Second)))
	}
	events := d.Net.RunFor(horizon)

	if adversary == "replay" {
		for _, f := range eve.CapturedOfKind(mesh.KindAccessRequest) {
			d.Net.Send("MR-0", f.To, f.Kind, f.Payload) // best-effort re-injection
		}
		d.Net.RunFor(10 * time.Second)
	}

	// Report.
	attached := 0
	var totalDelay time.Duration
	for _, id := range ids {
		st := d.Users[id].Stats()
		if st.Attached {
			attached++
			totalDelay += st.AttachDelay
		}
	}
	fmt.Printf("simulation: %d users, %d routers, %d max hops, loss=%.2f, %d events processed\n",
		users, routers, hops, loss, events)
	fmt.Printf("attached: %d/%d", attached, users)
	if attached > 0 {
		fmt.Printf("  mean attach delay: %v", totalDelay/time.Duration(attached))
	}
	fmt.Println()

	m := d.Net.Metrics()
	fmt.Println("traffic:")
	for _, k := range []mesh.FrameKind{
		mesh.KindBeacon, mesh.KindAccessRequest, mesh.KindAccessConfirm,
		mesh.KindPeerHello, mesh.KindPeerResponse, mesh.KindPeerConfirm, mesh.KindData,
	} {
		if m.FramesByKind[k] == 0 {
			continue
		}
		fmt.Printf("  %-22s frames=%-5d bytes=%d\n", k, m.FramesByKind[k], m.BytesByKind[k])
	}
	fmt.Printf("  frames lost: %d\n", m.FramesLost)

	switch adversary {
	case "rogue":
		fmt.Printf("adversary: rogue router lured %d access requests (0 = defense held)\n", rogue.Lured)
	case "flood":
		st := d.Routers["MR-0"].Router().Stats()
		fmt.Printf("adversary: flood of %d; router shed %d cheaply, did %d expensive verifications\n",
			injector.Sent, st.RejectedPuzzle, st.ExpensiveVerifications)
	case "replay":
		fmt.Println("adversary: replayed all captured M.2 frames; sessions remain keyed to the original users")
	}
	return nil
}
