// Facade tests: exercise the public API exactly as a downstream user
// would, via the aliases in package peace only.
package peace_test

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"github.com/peace-mesh/peace"
)

// newFacadeDeployment provisions a deployment through the public API.
func newFacadeDeployment(t *testing.T) (*peace.NetworkOperator, *peace.TTP, *peace.GroupManager, *peace.User, *peace.MeshRouter, *peace.FixedClock) {
	t.Helper()
	clock := &peace.FixedClock{T: time.Unix(1751600000, 0)}
	cfg := peace.Config{Clock: clock}

	no, err := peace.NewNetworkOperator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ttp, err := peace.NewTTP(cfg, no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	gm, err := peace.NewGroupManager(cfg, "acme", no.Authority())
	if err != nil {
		t.Fatal(err)
	}
	if err := no.RegisterUserGroup(gm, ttp, 4); err != nil {
		t.Fatal(err)
	}
	u, err := peace.NewUser(cfg, peace.Identity{
		Essential:  "public-api-user",
		Attributes: []peace.Attribute{{Group: "acme", Role: "employee"}},
	}, no.Authority(), no.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	if err := peace.EnrollUser(u, gm, ttp); err != nil {
		t.Fatal(err)
	}
	r, err := peace.NewMeshRouter(cfg, "MR-9", no.Authority(), no.GroupPublicKey())
	if err != nil {
		t.Fatal(err)
	}
	c, err := no.EnrollRouter("MR-9", r.Public())
	if err != nil {
		t.Fatal(err)
	}
	r.SetCertificate(c)
	crl, url, err := no.RevocationBundles()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.UpdateRevocations(crl, url); err != nil {
		t.Fatal(err)
	}
	for _, snap := range []*peace.RevocationSnapshot{crl.Snapshot, url.Snapshot} {
		if err := u.InstallRevocationSnapshot(snap); err != nil {
			t.Fatal(err)
		}
	}
	return no, ttp, gm, u, r, clock
}

func TestFacadeFullLifecycle(t *testing.T) {
	no, _, gm, u, r, _ := newFacadeDeployment(t)

	// AKA through the facade types.
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "acme")
	if err != nil {
		t.Fatal(err)
	}
	m3, rs, err := r.HandleAccessRequest(m2)
	if err != nil {
		t.Fatal(err)
	}
	us, err := u.HandleAccessConfirm(m3)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := us.SealData(rand.Reader, []byte("facade"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rs.OpenData(frame); err != nil {
		t.Fatal(err)
	}

	// Audit and trace through the facade.
	audit, err := no.Audit(m2)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Group != "acme" {
		t.Fatalf("audit group = %q", audit.Group)
	}
	la := peace.NewLawAuthority(gm)
	res, err := la.Trace(no, m2)
	if err != nil {
		t.Fatal(err)
	}
	if res.User != "public-api-user" {
		t.Fatalf("trace uid = %q", res.User)
	}
}

func TestFacadeErrorsMatchable(t *testing.T) {
	_, _, _, u, r, clock := newFacadeDeployment(t)

	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	clock.Advance(time.Hour)
	if _, err := u.HandleBeacon(beacon, "acme"); !errors.Is(err, peace.ErrReplay) {
		t.Fatalf("facade sentinel ErrReplay did not match: %v", err)
	}
}

func TestFacadeGroupVerifyOnProtocolSignature(t *testing.T) {
	// The facade re-exports the signature primitive; it must interoperate
	// with protocol-level signatures: GroupVerify accepts an M.2 signature
	// against the transcript it covers and rejects any other transcript.
	no, _, _, u, r, _ := newFacadeDeployment(t)
	beacon, err := r.Beacon()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := u.HandleBeacon(beacon, "acme")
	if err != nil {
		t.Fatal(err)
	}
	gpk := no.GroupPublicKey()
	if err := peace.GroupVerify(gpk, m2.SignedTranscript(), m2.Sig); err != nil {
		t.Fatalf("facade GroupVerify rejected a protocol signature: %v", err)
	}
	if err := peace.GroupVerify(gpk, []byte("other transcript"), m2.Sig); err == nil {
		t.Fatal("facade GroupVerify accepted the wrong transcript")
	}
	if err := peace.GroupVerifyWithRevocation(gpk, m2.SignedTranscript(), m2.Sig, nil); err != nil {
		t.Fatalf("facade GroupVerifyWithRevocation: %v", err)
	}
}
