// Package peace is the public API of the PEACE reproduction: a
// privacy-enhanced yet accountable security framework for metropolitan
// wireless mesh networks (Ren & Lou, ICDCS 2008).
//
// The package re-exports the framework layer (internal/core) and the
// group-signature primitive (internal/sgs) under one import path:
//
//	import "github.com/peace-mesh/peace"
//
//	no, _ := peace.NewNetworkOperator(peace.Config{})
//	ttp, _ := peace.NewTTP(peace.Config{}, no.Authority())
//	gm, _ := peace.NewGroupManager(peace.Config{}, "company-x", no.Authority())
//	_ = no.RegisterUserGroup(gm, ttp, 100)
//
//	u, _ := peace.NewUser(peace.Config{}, peace.Identity{Essential: "alice"},
//	    no.Authority(), no.GroupPublicKey())
//	_ = peace.EnrollUser(u, gm, ttp)
//
// See the examples directory for complete runnable scenarios, and
// DESIGN.md / EXPERIMENTS.md for the reproduction methodology.
package peace

import (
	"github.com/peace-mesh/peace/internal/core"
	"github.com/peace-mesh/peace/internal/revocation"
	"github.com/peace-mesh/peace/internal/sgs"
)

// Framework entities (Sections III–IV of the paper).
type (
	// NetworkOperator is the NO: issuer of group keys, router certificates
	// and revocation state, and the auditing party.
	NetworkOperator = core.NetworkOperator
	// TTP is the offline trusted third party of the setup protocol.
	TTP = core.TTP
	// GroupManager manages one user group's memberships.
	GroupManager = core.GroupManager
	// User is a network user with one or more group credentials.
	User = core.User
	// MeshRouter is a backbone router MR_k.
	MeshRouter = core.MeshRouter
	// LawAuthority performs full traces with NO + GM cooperation.
	LawAuthority = core.LawAuthority
)

// Identity model (Section III.C).
type (
	// Identity is a user's essential + nonessential attribute information.
	Identity = core.Identity
	// Attribute is one nonessential role attribute.
	Attribute = core.Attribute
	// UserID is essential attribute information (never transmitted).
	UserID = core.UserID
	// GroupID names a user group.
	GroupID = core.GroupID
	// AuditResult is what an operator audit reveals (group only).
	AuditResult = core.AuditResult
	// TraceResult is what a law-authority trace reveals.
	TraceResult = core.TraceResult
)

// Protocol messages (Section IV.B/IV.C).
type (
	// Beacon is M.1.
	Beacon = core.Beacon
	// AccessRequest is M.2.
	AccessRequest = core.AccessRequest
	// AccessConfirm is M.3.
	AccessConfirm = core.AccessConfirm
	// PeerHello is M̃.1.
	PeerHello = core.PeerHello
	// PeerResponse is M̃.2.
	PeerResponse = core.PeerResponse
	// PeerConfirm is M̃.3.
	PeerConfirm = core.PeerConfirm
	// RevocationSnapshot is one epoch-numbered signed copy of a
	// revocation list (URL or CRL).
	RevocationSnapshot = revocation.Snapshot
	// RevocationDelta is the signed difference between two epochs.
	RevocationDelta = revocation.Delta
	// RevocationBundle pairs a snapshot with the delta from the previous
	// epoch, as issued by the operator.
	RevocationBundle = revocation.Bundle
	// RevocationRef is the (epoch, digest, nextUpdate) reference beacons
	// carry instead of full lists.
	RevocationRef = revocation.Ref
	// Session is an established security association.
	Session = core.Session
	// SessionID identifies a session by its DH share pair.
	SessionID = core.SessionID
	// DataFrame is protected session traffic.
	DataFrame = core.DataFrame
	// Receipt is a non-repudiation acknowledgment from setup.
	Receipt = core.Receipt
	// RouterStats are a router's processing counters.
	RouterStats = core.RouterStats
	// BillingReport aggregates audited sessions per group for billing.
	BillingReport = core.BillingReport
)

// Configuration and clocks.
type (
	// Config carries injected dependencies and protocol knobs.
	Config = core.Config
	// Clock abstracts time for tests and simulation.
	Clock = core.Clock
	// SystemClock is the wall-clock Clock.
	SystemClock = core.SystemClock
	// FixedClock is a settable Clock.
	FixedClock = core.FixedClock
)

// Group-signature layer (the paper's primary cryptographic contribution).
type (
	// GroupPublicKey is gpk = (g1, g2, w).
	GroupPublicKey = sgs.PublicKey
	// GroupPrivateKey is gsk[i,j] = (A_{i,j}, grp_i, x_j).
	GroupPrivateKey = sgs.PrivateKey
	// GroupSignature is the tuple (r, T1, T2, c, s_α, s_x, s_δ).
	GroupSignature = sgs.Signature
	// RevocationToken identifies a key for revocation and audit.
	RevocationToken = sgs.RevocationToken
	// OpCounts tallies exponentiations and pairings.
	OpCounts = sgs.OpCounts
)

// Constructors and top-level operations.
var (
	// NewNetworkOperator creates an operator with fresh γ and NSK.
	NewNetworkOperator = core.NewNetworkOperator
	// NewTTP creates the offline trusted third party.
	NewTTP = core.NewTTP
	// NewGroupManager creates a user-group manager.
	NewGroupManager = core.NewGroupManager
	// NewUser creates a network user.
	NewUser = core.NewUser
	// NewMeshRouter creates a mesh router.
	NewMeshRouter = core.NewMeshRouter
	// NewLawAuthority creates a law authority knowing the given managers.
	NewLawAuthority = core.NewLawAuthority
	// EnrollUser runs the three-party enrollment of Section IV.A.
	EnrollUser = core.EnrollUser
	// NewSessionID derives a session identifier from two DH shares.
	NewSessionID = core.NewSessionID

	// GroupSign produces a bare group signature (protocol-independent).
	GroupSign = sgs.Sign
	// GroupVerify checks a bare group signature.
	GroupVerify = sgs.Verify
	// GroupVerifyWithRevocation additionally scans a revocation list.
	GroupVerifyWithRevocation = sgs.VerifyWithRevocation
)

// Sentinel errors, re-exported for errors.Is matching.
var (
	ErrReplay           = core.ErrReplay
	ErrBadBeacon        = core.ErrBadBeacon
	ErrBadAccessRequest = core.ErrBadAccessRequest
	ErrRevokedUser      = core.ErrRevokedUser
	ErrRevokedRouter    = core.ErrRevokedRouter
	ErrBadConfirmation  = core.ErrBadConfirmation
	ErrNoSession        = core.ErrNoSession
	ErrPuzzleRequired   = core.ErrPuzzleRequired
	ErrUnknownGroup     = core.ErrUnknownGroup
	ErrAuditFailed      = core.ErrAuditFailed
)
