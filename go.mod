module github.com/peace-mesh/peace

go 1.22
